// Package segment implements keyword-query segmentation and typing. The
// paper's search pipeline (§3) begins by processing queries "to identify
// entities using standard query segmentation techniques" and §5.2 builds
// typed templates by replacing tokens "with schema types by looking for
// the largest possible string overlaps with entities in the database".
// This package provides both: a dictionary of entity surface forms drawn
// from the database, a dynamic-programming segmenter that prefers the
// largest overlaps, and the typed-template abstraction
// ("[movie.title] cast").
package segment

import (
	"sort"
	"strings"

	"qunits/internal/ir"
	"qunits/internal/relational"
)

// maxEntityTokens caps how long a dictionary phrase may be; longer text
// values (plot outlines, trivia) are prose, not entity names.
const maxEntityTokens = 6

// Entry records that a phrase is the surface form of a database value.
type Entry struct {
	// Type is the schema element the phrase instantiates (person.name,
	// movie.title, genre.type, …).
	Type relational.QualifiedColumn
	// Ref is the tuple holding the value.
	Ref relational.TupleRef
	// IsLabel marks entries from a table's label column — the column that
	// *names* entities of that table. When a phrase is ambiguous between
	// a label column (person.name) and an incidental text column
	// (soundtrack.artist), recognizers prefer the label reading.
	IsLabel bool
}

// Dictionary maps normalized phrases to the database values they name,
// plus the schema-attribute vocabulary used to type non-entity tokens.
type Dictionary struct {
	entities  map[string][]Entry
	attrs     map[string]string // normalized phrase -> table name
	maxTokens int
}

// Options configures dictionary construction.
type Options struct {
	// AttributeSynonyms maps extra query vocabulary to table names, e.g.
	// "filmography" -> "movie", "ost" -> "soundtrack". The schema's own
	// table and column names are always included.
	AttributeSynonyms map[string]string
}

// BuildDictionary scans every searchable column whose values are short
// enough to be entity names and registers each value under its normalized
// form. It also assembles the attribute vocabulary from table names,
// column names, and the provided synonyms.
func BuildDictionary(db *relational.Database, opts Options) *Dictionary {
	d := &Dictionary{
		entities:  make(map[string][]Entry),
		attrs:     make(map[string]string),
		maxTokens: 1,
	}
	db.Tables(func(t *relational.Table) {
		schema := t.Schema()
		label := schema.LabelColumn()
		for ci, col := range schema.Columns {
			if !col.Searchable || col.Kind != relational.KindString {
				continue
			}
			q := relational.QualifiedColumn{Table: schema.Name, Column: col.Name}
			colIdx := ci
			isLabel := col.Name == label
			t.Scan(func(id int, row relational.Row) bool {
				v := row[colIdx]
				if v.IsNull() {
					return true
				}
				toks := ir.Tokenize(v.AsString())
				if len(toks) == 0 || len(toks) > maxEntityTokens {
					return true
				}
				phrase := strings.Join(toks, " ")
				d.entities[phrase] = append(d.entities[phrase], Entry{
					Type:    q,
					Ref:     relational.TupleRef{Table: schema.Name, Row: id},
					IsLabel: isLabel,
				})
				if len(toks) > d.maxTokens {
					d.maxTokens = len(toks)
				}
				return true
			})
		}
	})
	// Attribute vocabulary: table names and their naive plural/singular
	// variants, then column names, then synonyms (synonyms win).
	db.Tables(func(t *relational.Table) {
		name := t.Schema().Name
		for _, form := range nameForms(name) {
			d.addAttr(form, name)
		}
		for _, col := range t.Schema().Columns {
			if strings.HasSuffix(col.Name, "_id") || col.Name == "id" {
				continue // internal ids are never query vocabulary
			}
			for _, form := range nameForms(col.Name) {
				d.addAttr(form, name)
			}
		}
	})
	for phrase, table := range opts.AttributeSynonyms {
		d.attrs[ir.Normalize(phrase)] = table
		if n := len(ir.Tokenize(phrase)); n > d.maxTokens {
			d.maxTokens = n
		}
	}
	return d
}

func (d *Dictionary) addAttr(phrase, table string) {
	phrase = ir.Normalize(phrase)
	if phrase == "" {
		return
	}
	if _, exists := d.attrs[phrase]; !exists {
		d.attrs[phrase] = table
	}
	if n := len(strings.Fields(phrase)); n > d.maxTokens {
		d.maxTokens = n
	}
}

// nameForms produces lookup variants of a schema identifier:
// "aka_title" -> ["aka title", "aka titles"]; "movie" -> ["movie",
// "movies"].
func nameForms(name string) []string {
	base := strings.ReplaceAll(name, "_", " ")
	forms := []string{base}
	if strings.HasSuffix(base, "s") {
		forms = append(forms, strings.TrimSuffix(base, "s"))
	} else {
		forms = append(forms, base+"s")
	}
	return forms
}

// LookupEntity returns the entries for a normalized phrase.
func (d *Dictionary) LookupEntity(phrase string) []Entry {
	return d.entities[ir.Normalize(phrase)]
}

// LookupAttribute returns the table an attribute phrase refers to.
func (d *Dictionary) LookupAttribute(phrase string) (string, bool) {
	t, ok := d.attrs[ir.Normalize(phrase)]
	return t, ok
}

// EntityCount returns the number of distinct entity phrases.
func (d *Dictionary) EntityCount() int { return len(d.entities) }

// EntityTypes returns the distinct schema types a phrase may denote,
// sorted for determinism.
func (d *Dictionary) EntityTypes(phrase string) []relational.QualifiedColumn {
	seen := map[relational.QualifiedColumn]bool{}
	var out []relational.QualifiedColumn
	for _, e := range d.entities[ir.Normalize(phrase)] {
		if !seen[e.Type] {
			seen[e.Type] = true
			out = append(out, e.Type)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SamplePhrases returns up to n entity phrases of the given type; used by
// the query-log derivation strategy, which "samples the database for
// entities and looks them up in the search query log". Deterministic
// (sorted) order.
func (d *Dictionary) SamplePhrases(typ relational.QualifiedColumn, n int) []string {
	var phrases []string
	for p, entries := range d.entities {
		for _, e := range entries {
			if e.Type == typ {
				phrases = append(phrases, p)
				break
			}
		}
	}
	sort.Strings(phrases)
	if n > 0 && len(phrases) > n {
		phrases = phrases[:n]
	}
	return phrases
}
