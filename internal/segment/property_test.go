package segment

import (
	"math/rand"
	"strings"
	"testing"

	"qunits/internal/relational"
)

// smallDict builds a dictionary over a handful of entities for brute-force
// comparison.
func smallDict(t *testing.T) *Dictionary {
	t.Helper()
	db := relational.NewDatabase("t")
	db.MustCreateTable(relational.MustTableSchema("movie", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("person", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	m := db.Table("movie")
	m.MustInsert(relational.Row{relational.Int(1), relational.String("cast away")})
	m.MustInsert(relational.Row{relational.Int(2), relational.String("star wars")})
	m.MustInsert(relational.Row{relational.Int(3), relational.String("the big star")})
	p := db.Table("person")
	p.MustInsert(relational.Row{relational.Int(1), relational.String("star jones")})
	p.MustInsert(relational.Row{relational.Int(2), relational.String("big tom")})
	return BuildDictionary(db, Options{AttributeSynonyms: map[string]string{"films": "movie"}})
}

// bruteBest enumerates every segmentation of the token sequence and
// returns the maximal score under the same scoring rules as the DP.
func bruteBest(d *Dictionary, toks []string) float64 {
	n := len(toks)
	if n == 0 {
		return 0
	}
	best := -1.0
	var rec func(at int, score float64)
	rec = func(at int, score float64) {
		if at == n {
			if score > best {
				best = score
			}
			return
		}
		for j := at + 1; j <= n; j++ {
			phrase := strings.Join(toks[at:j], " ")
			length := float64(j - at)
			if len(d.entities[phrase]) > 0 {
				rec(j, score+entityTokenWeight*length*length)
			}
			if _, ok := d.attrs[phrase]; ok {
				rec(j, score+attrTokenWeight*length)
			}
			if j == at+1 {
				rec(j, score+freeTokenWeight)
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: the DP finds the globally optimal segmentation score.
func TestSegmenterIsOptimal(t *testing.T) {
	d := smallDict(t)
	s := NewSegmenter(d)
	vocab := []string{"star", "wars", "cast", "away", "big", "the", "tom", "jones", "films", "zzz"}
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(6)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[r.Intn(len(vocab))]
		}
		query := strings.Join(toks, " ")
		got := s.Segment(query).Score
		want := bruteBest(d, toks)
		if got != want {
			t.Fatalf("Segment(%q).Score = %v, brute force = %v", query, got, want)
		}
	}
}

// Property: segment boundaries reconstruct the token sequence exactly.
func TestSegmentationPartitions(t *testing.T) {
	d := smallDict(t)
	s := NewSegmenter(d)
	r := rand.New(rand.NewSource(42))
	vocab := []string{"star", "wars", "cast", "away", "big", "films", "q"}
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(7)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[r.Intn(len(vocab))]
		}
		query := strings.Join(toks, " ")
		sg := s.Segment(query)
		var rebuilt []string
		for _, seg := range sg.Segments {
			rebuilt = append(rebuilt, strings.Fields(seg.Text)...)
		}
		if strings.Join(rebuilt, " ") != query {
			t.Fatalf("segmentation of %q rebuilt as %q", query, strings.Join(rebuilt, " "))
		}
	}
}
