package segment

import (
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func testUniverse(t *testing.T) (*imdb.Universe, *Dictionary) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 3, Persons: 150, Movies: 100, CastPerMovie: 4})
	d := BuildDictionary(u.DB, Options{AttributeSynonyms: map[string]string{
		"filmography": "movie",
		"films":       "movie",
		"actors":      "cast",
		"ost":         "soundtrack",
		"box office":  "boxoffice",
	}})
	return u, d
}

func TestDictionaryEntities(t *testing.T) {
	_, d := testUniverse(t)
	if d.EntityCount() == 0 {
		t.Fatal("empty dictionary")
	}
	entries := d.LookupEntity("george clooney")
	if len(entries) == 0 {
		t.Fatal("george clooney not in dictionary")
	}
	if entries[0].Type.String() != "person.name" {
		t.Errorf("type = %s", entries[0].Type)
	}
	if es := d.LookupEntity("GEORGE   Clooney"); len(es) == 0 {
		t.Error("lookup not normalized")
	}
	if es := d.LookupEntity("zz top nonsense"); len(es) != 0 {
		t.Error("found nonsense entity")
	}
}

func TestDictionaryAttributes(t *testing.T) {
	_, d := testUniverse(t)
	cases := map[string]string{
		"cast":        "cast",
		"movies":      "movie",
		"movie":       "movie",
		"filmography": "movie",
		"box office":  "boxoffice",
		"ost":         "soundtrack",
		"trivia":      "trivia",
		"genre":       "genre",
	}
	for phrase, want := range cases {
		got, ok := d.LookupAttribute(phrase)
		if !ok || got != want {
			t.Errorf("LookupAttribute(%q) = %q, %v; want %q", phrase, got, ok, want)
		}
	}
	if _, ok := d.LookupAttribute("id"); ok {
		t.Error("internal id column leaked into attribute vocabulary")
	}
	if _, ok := d.LookupAttribute("person_id"); ok {
		t.Error("internal fk column leaked into attribute vocabulary")
	}
}

func TestSegmentPaperExamples(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)

	cases := []struct {
		query    string
		template string
	}{
		{"george clooney movies", "[person.name] movies"},
		{"star wars cast", "[movie.title] cast"},
		{"terminator cast", "[movie.title] cast"},
		{"george clooney", "[person.name]"},
		{"tom hanks cast away", "[person.name] [movie.title]"},
	}
	for _, c := range cases {
		sg := s.Segment(c.query)
		if got := sg.Template(); got != c.template {
			t.Errorf("Segment(%q).Template() = %q, want %q (%s)", c.query, got, c.template, sg)
		}
	}
}

func TestSegmentLargestOverlapWins(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)
	// "cast away" is a movie; the segmenter must prefer the two-token
	// entity over attribute "cast" + free "away".
	sg := s.Segment("cast away")
	if len(sg.Segments) != 1 || sg.Segments[0].Kind != KindEntity {
		t.Fatalf("cast away segmented as %s", sg)
	}
	if sg.Segments[0].Type.String() != "movie.title" {
		t.Errorf("type = %s", sg.Segments[0].Type)
	}
	// But "cast" alone is the attribute.
	sg = s.Segment("cast")
	if len(sg.Segments) != 1 || sg.Segments[0].Kind != KindAttribute {
		t.Fatalf("cast segmented as %s", sg)
	}
}

func TestSegmentFreeTextMerging(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)
	sg := s.Segment("movie flying transponders")
	// "movie" is attribute; "flying transponders" should merge into one
	// free segment (modeled on the paper's "movie space transponders"
	// free-form example; our synthetic DB happens to contain "space" as a
	// keyword entity, so the free tokens differ).
	if len(sg.Segments) != 2 {
		t.Fatalf("segments = %s", sg)
	}
	if sg.Segments[0].Kind != KindAttribute {
		t.Errorf("first segment = %s", sg.Segments[0].Kind)
	}
	if sg.Segments[1].Kind != KindFree || sg.Segments[1].Text != "flying transponders" {
		t.Errorf("free segment = %+v", sg.Segments[1])
	}
	if sg.FreeText() != "flying transponders" {
		t.Errorf("FreeText = %q", sg.FreeText())
	}
}

func TestSegmentEmptyQuery(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)
	sg := s.Segment("")
	if len(sg.Segments) != 0 {
		t.Errorf("segments of empty query: %v", sg.Segments)
	}
	sg = s.Segment("!!! ???")
	if len(sg.Segments) != 0 {
		t.Errorf("segments of punctuation: %v", sg.Segments)
	}
}

func TestSegmentEntitiesAndAttributesAccessors(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)
	sg := s.Segment("george clooney movies xyzzy")
	if len(sg.Entities()) != 1 {
		t.Errorf("Entities = %v", sg.Entities())
	}
	if len(sg.Attributes()) != 1 {
		t.Errorf("Attributes = %v", sg.Attributes())
	}
	if sg.FreeText() != "xyzzy" {
		t.Errorf("FreeText = %q", sg.FreeText())
	}
}

func TestSegmentationCoversAllTokens(t *testing.T) {
	_, d := testUniverse(t)
	s := NewSegmenter(d)
	queries := []string{
		"george clooney movies",
		"star wars",
		"highest box office revenue",
		"angelina jolie tomb raider",
		"completely unknown gibberish words",
		"the godfather trivia",
	}
	for _, q := range queries {
		sg := s.Segment(q)
		total := 0
		for _, seg := range sg.Segments {
			total += len(splitWords(seg.Text))
		}
		want := len(splitWords(q))
		if total != want {
			t.Errorf("Segment(%q) covers %d tokens, want %d (%s)", q, total, want, sg)
		}
	}
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\'' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			if r == '\'' && cur == "" {
				continue
			}
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestEntityTypesMultiType(t *testing.T) {
	db := relational.NewDatabase("t")
	db.MustCreateTable(relational.MustTableSchema("a", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("b", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
	}, "id", nil))
	db.Table("a").MustInsert(relational.Row{relational.Int(1), relational.String("batman")})
	db.Table("b").MustInsert(relational.Row{relational.Int(1), relational.String("batman")})
	d := BuildDictionary(db, Options{})
	types := d.EntityTypes("batman")
	if len(types) != 2 {
		t.Fatalf("EntityTypes = %v, want both a.name and b.title", types)
	}
	if types[0].String() != "a.name" || types[1].String() != "b.title" {
		t.Errorf("types order = %v", types)
	}
}

func TestSamplePhrases(t *testing.T) {
	_, d := testUniverse(t)
	ph := d.SamplePhrases(relational.QualifiedColumn{Table: "person", Column: "name"}, 10)
	if len(ph) != 10 {
		t.Fatalf("SamplePhrases returned %d", len(ph))
	}
	for i := 1; i < len(ph); i++ {
		if ph[i-1] >= ph[i] {
			t.Fatal("SamplePhrases not sorted")
		}
	}
	all := d.SamplePhrases(relational.QualifiedColumn{Table: "person", Column: "name"}, 0)
	if len(all) < 100 {
		t.Errorf("expected ≥100 person phrases, got %d", len(all))
	}
}

func TestLongTextValuesExcluded(t *testing.T) {
	_, d := testUniverse(t)
	// Plot outlines are long prose; none should be an entity phrase.
	if es := d.LookupEntity("a reluctant hero must confront a buried past"); len(es) != 0 {
		t.Error("plot text leaked into entity dictionary")
	}
}

func TestSegmentKindString(t *testing.T) {
	if KindEntity.String() != "entity" || KindAttribute.String() != "attribute" || KindFree.String() != "free" {
		t.Error("SegmentKind names wrong")
	}
}
