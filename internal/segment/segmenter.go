package segment

import (
	"fmt"
	"strings"

	"qunits/internal/ir"
	"qunits/internal/relational"
)

// SegmentKind classifies one segment of a query.
type SegmentKind uint8

// The segment kinds.
const (
	// KindEntity is a database entity surface form (george clooney).
	KindEntity SegmentKind = iota
	// KindAttribute is schema vocabulary (cast, movies, box office).
	KindAttribute
	// KindFree is anything else — the paper's "free-form text".
	KindFree
)

// String names the kind.
func (k SegmentKind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindAttribute:
		return "attribute"
	default:
		return "free"
	}
}

// Segment is one typed piece of a segmented query.
type Segment struct {
	// Text is the normalized surface text of the segment.
	Text string
	// Kind classifies the segment.
	Kind SegmentKind
	// Type is the schema element for entity segments (person.name).
	Type relational.QualifiedColumn
	// Table is the referenced table for attribute segments.
	Table string
	// Entries are the matching database values for entity segments.
	Entries []Entry
}

// Segmentation is a full segmentation of one query.
type Segmentation struct {
	// Segments in query order.
	Segments []Segment
	// Score is the generative score the DP assigned; higher is better.
	Score float64
}

// Segmentation scoring: the DP maximizes total score. Longer entity
// matches dominate (the "largest possible string overlap" rule): an
// n-token entity scores n², so a two-token entity (4) beats two
// independent free tokens (1) or an entity+free split (1.5). Attribute
// vocabulary beats free text but never beats an entity of equal length,
// breaking the "actor" ambiguity (cast.role value vs. cast vocabulary) in
// favor of the attribute reading only when no longer entity consumes it.
const (
	entityTokenWeight = 1.0 // multiplied by len²
	attrTokenWeight   = 1.3 // multiplied by len
	freeTokenWeight   = 0.5 // per token
)

// Segmenter segments queries against a dictionary.
type Segmenter struct {
	dict *Dictionary
}

// NewSegmenter returns a segmenter over the dictionary.
func NewSegmenter(d *Dictionary) *Segmenter { return &Segmenter{dict: d} }

// Segment computes the best-scoring segmentation of the query by dynamic
// programming over token positions.
func (s *Segmenter) Segment(query string) Segmentation {
	toks := ir.Tokenize(query)
	n := len(toks)
	if n == 0 {
		return Segmentation{}
	}
	type cell struct {
		score float64
		prev  int
		seg   Segment
	}
	best := make([]cell, n+1)
	for i := 1; i <= n; i++ {
		best[i].score = -1
	}
	maxSpan := s.dict.maxTokens
	if maxSpan < 1 {
		maxSpan = 1
	}
	for i := 0; i < n; i++ {
		if best[i].score < 0 {
			continue
		}
		limit := i + maxSpan
		if limit > n {
			limit = n
		}
		for j := i + 1; j <= limit; j++ {
			span := toks[i:j]
			phrase := strings.Join(span, " ")
			length := float64(j - i)

			// Entity reading.
			if entries := s.dict.entities[phrase]; len(entries) > 0 {
				sc := best[i].score + entityTokenWeight*length*length
				if sc > best[j].score {
					best[j] = cell{score: sc, prev: i, seg: Segment{
						Text: phrase, Kind: KindEntity,
						Type: entries[0].Type, Entries: entries,
					}}
				}
			}
			// Attribute reading.
			if table, ok := s.dict.attrs[phrase]; ok {
				sc := best[i].score + attrTokenWeight*length
				if sc > best[j].score {
					best[j] = cell{score: sc, prev: i, seg: Segment{
						Text: phrase, Kind: KindAttribute, Table: table,
					}}
				}
			}
			// Free reading, single token only (free runs compose from
			// single-token segments).
			if j == i+1 {
				sc := best[i].score + freeTokenWeight
				if sc > best[j].score {
					best[j] = cell{score: sc, prev: i, seg: Segment{
						Text: phrase, Kind: KindFree,
					}}
				}
			}
		}
	}
	// Reconstruct.
	var rev []Segment
	for at := n; at > 0; at = best[at].prev {
		rev = append(rev, best[at].seg)
	}
	segs := make([]Segment, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		segs = append(segs, rev[i])
	}
	segs = mergeFreeRuns(segs)
	return Segmentation{Segments: segs, Score: best[n].score}
}

// mergeFreeRuns collapses adjacent free tokens into one free-text
// segment.
func mergeFreeRuns(segs []Segment) []Segment {
	var out []Segment
	for _, s := range segs {
		if s.Kind == KindFree && len(out) > 0 && out[len(out)-1].Kind == KindFree {
			out[len(out)-1].Text += " " + s.Text
			continue
		}
		out = append(out, s)
	}
	return out
}

// Template renders the segmentation as a typed template in the paper's
// §5.2 notation: entity segments become their schema type in brackets,
// everything else stays literal. "george clooney movies" →
// "[person.name] movies".
func (sg Segmentation) Template() string {
	parts := make([]string, 0, len(sg.Segments))
	for _, s := range sg.Segments {
		if s.Kind == KindEntity {
			parts = append(parts, "["+s.Type.String()+"]")
		} else {
			parts = append(parts, s.Text)
		}
	}
	return strings.Join(parts, " ")
}

// Entities returns the entity segments in order.
func (sg Segmentation) Entities() []Segment {
	var out []Segment
	for _, s := range sg.Segments {
		if s.Kind == KindEntity {
			out = append(out, s)
		}
	}
	return out
}

// Attributes returns the attribute segments in order.
func (sg Segmentation) Attributes() []Segment {
	var out []Segment
	for _, s := range sg.Segments {
		if s.Kind == KindAttribute {
			out = append(out, s)
		}
	}
	return out
}

// FreeText returns the concatenated free-text segments.
func (sg Segmentation) FreeText() string {
	var parts []string
	for _, s := range sg.Segments {
		if s.Kind == KindFree {
			parts = append(parts, s.Text)
		}
	}
	return strings.Join(parts, " ")
}

// String renders the segmentation for debugging.
func (sg Segmentation) String() string {
	parts := make([]string, 0, len(sg.Segments))
	for _, s := range sg.Segments {
		switch s.Kind {
		case KindEntity:
			parts = append(parts, fmt.Sprintf("%s(%s)", s.Text, s.Type))
		case KindAttribute:
			parts = append(parts, fmt.Sprintf("%s(→%s)", s.Text, s.Table))
		default:
			parts = append(parts, fmt.Sprintf("%s(free)", s.Text))
		}
	}
	return strings.Join(parts, " | ")
}
