package server

import (
	"context"

	"qunits/internal/cluster"
	"qunits/internal/search"
)

// searchBackend is where a server's search traffic goes once the public
// request shaping (defaulting, clamping, caching, coalescing) is done:
// an in-process engine on single and partition nodes, a scatter-gather
// coordinator on coordinator nodes. Both produce the same wire-ready
// cachedSearch, which is what keeps the /v1 surface byte-identical
// across deployment shapes.
type searchBackend interface {
	// search answers one request.
	search(ctx context.Context, req search.Request) (*cachedSearch, error)
	// batch answers a batch with per-item outcomes, aligned with reqs. A
	// non-nil error means the whole batch failed (a partition was
	// unreachable) and no outcomes exist.
	batch(ctx context.Context, reqs []search.Request) ([]backendOutcome, error)
}

// backendOutcome is one batch item's result: exactly one field is set.
type backendOutcome struct {
	entry *cachedSearch
	err   error
}

// engineBackend serves searches from an in-process engine.
type engineBackend struct {
	engine *search.Engine
}

func (b engineBackend) search(ctx context.Context, req search.Request) (*cachedSearch, error) {
	resp, err := b.engine.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return toCached(resp), nil
}

func (b engineBackend) batch(ctx context.Context, reqs []search.Request) ([]backendOutcome, error) {
	results := b.engine.BatchSearch(ctx, reqs)
	out := make([]backendOutcome, len(results))
	for i, r := range results {
		if r.Err != nil {
			out[i] = backendOutcome{err: r.Err}
			continue
		}
		out[i] = backendOutcome{entry: toCached(r.Response)}
	}
	return out, nil
}

// coordBackend serves searches by fanning out to a partition cluster.
type coordBackend struct {
	coord *cluster.Coordinator
}

func (b coordBackend) search(ctx context.Context, req search.Request) (*cachedSearch, error) {
	page, err := b.coord.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	return pageToCached(page), nil
}

func (b coordBackend) batch(ctx context.Context, reqs []search.Request) ([]backendOutcome, error) {
	outcomes, err := b.coord.Batch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]backendOutcome, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			out[i] = backendOutcome{err: o.Err}
			continue
		}
		out[i] = backendOutcome{entry: pageToCached(o.Page)}
	}
	return out, nil
}

// fromWireResults projects cluster wire results onto the /v1 result
// shape. The two are field-for-field identical by construction
// (cluster.ResultToWire is the single engine-to-wire conversion point);
// this is only a type change.
func fromWireResults(rs []cluster.Result) []V1Result {
	out := make([]V1Result, len(rs))
	for i, r := range rs {
		out[i] = V1Result{
			SearchResult: SearchResult{
				ID:           r.ID,
				Label:        r.Label,
				Definition:   r.Definition,
				Score:        r.Score,
				IRScore:      r.IRScore,
				TypeAffinity: r.TypeAffinity,
				Snippet:      r.Snippet,
			},
			Utility:      r.Utility,
			TypeFactor:   r.TypeFactor,
			UtilityBlend: r.UtilityBlend,
			AnchorBoost:  r.AnchorBoost,
		}
	}
	return out
}

// fromWireExplain projects the cluster explain payload onto /v1's.
func fromWireExplain(ex *cluster.Explain) *V1Explain {
	if ex == nil {
		return nil
	}
	out := &V1Explain{Template: ex.Template}
	for _, seg := range ex.Segments {
		out.Segments = append(out.Segments, V1Segment(seg))
	}
	for _, a := range ex.Affinities {
		out.Affinities = append(out.Affinities, V1Affinity(a))
	}
	return out
}

// pageToCached shapes a merged coordinator page as the wire-ready form
// the cache and the /v1 handlers share.
func pageToCached(p *cluster.Page) *cachedSearch {
	return &cachedSearch{
		results: fromWireResults(p.Results),
		total:   p.Total,
		explain: fromWireExplain(p.Explain),
	}
}

// toCached converts an engine response to its wire-ready cached form,
// routing through cluster.ResultToWire so single-node responses and
// partition pages share one conversion and cannot drift.
func toCached(resp *search.Response) *cachedSearch {
	return &cachedSearch{
		results: fromWireResults(cluster.ResultsToWire(resp.Results)),
		total:   resp.Total,
		explain: fromWireExplain(cluster.ExplainToWire(resp.Explain)),
	}
}
