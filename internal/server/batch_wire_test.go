package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// The batch wire contract: a /v1/search batch may amortize the engine
// work behind its items (one shared posting pass, deduplicated
// duplicates), but it must not change a byte — every item's payload
// must golden-match the reply the same request gets on its own, through
// both deployment shapes: an in-process engine and a scatter-gather
// coordinator over a 3-partition cluster.

// batchWireItems is the mixed-shape workload: plain, explain, paged,
// anchor-filtered, definition-filtered, a duplicate of the first item,
// and an invalid (blank) item that must fail alone without failing the
// batch.
var batchWireItems = []string{
	`{"query":"star wars cast","k":4}`,
	`{"query":"george clooney","k":2,"explain":true}`,
	`{"query":"ocean","k":6,"offset":1}`,
	`{"query":"star wars","k":5,"filter":{"anchor_types":["movie.title"]}}`,
	`{"query":"tom hanks","k":3,"filter":{"definitions":["person-profile","movie-cast"]}}`,
	`{"query":"star wars cast","k":4}`,
	`{"query":"   "}`,
}

// checkBatchWireGolden drives the batch and the singles against one
// server and diffs the scrubbed bytes item by item.
func checkBatchWireGolden(t *testing.T, s *Server) {
	t.Helper()
	batchBody := fmt.Sprintf(`{"queries":[%s]}`, strings.Join(batchWireItems, ","))
	code, raw := replayPost(t, s, http.MethodPost, "/v1/search", batchBody)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, raw)
	}
	var parsed struct {
		Items []struct {
			Response json.RawMessage `json:"response"`
			Error    *V1Error        `json:"error"`
		} `json:"items"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Items) != len(batchWireItems) {
		t.Fatalf("%d items out for %d in", len(parsed.Items), len(batchWireItems))
	}
	for i, body := range batchWireItems {
		singleCode, singleRaw := replayPost(t, s, http.MethodPost, "/v1/search", body)
		item := parsed.Items[i]
		if singleCode != http.StatusOK {
			// The single request failed, so the batch item must carry the
			// same structured error.
			var envelope v1Envelope
			if err := json.Unmarshal(singleRaw, &envelope); err != nil {
				t.Fatal(err)
			}
			if item.Error == nil || *item.Error != envelope.Error {
				t.Fatalf("item %d %s: batch error %+v, single error %+v", i, body, item.Error, envelope.Error)
			}
			continue
		}
		if item.Error != nil {
			t.Fatalf("item %d %s: batch failed (%+v) but the single request succeeded", i, body, item.Error)
		}
		if got, want := scrubTiming(t, item.Response), scrubTiming(t, singleRaw); got != want {
			t.Fatalf("item %d %s: wire bytes differ\nbatch:  %s\nsingle: %s", i, body, got, want)
		}
	}
}

// TestBatchWireGolden runs the golden diff through both backends. The
// caches are off on every node so the cached flag — part of the wire
// bytes — agrees between the batch and single runs.
func TestBatchWireGolden(t *testing.T) {
	t.Run("engine", func(t *testing.T) {
		pruned, _, _ := newReplayStacks(t)
		checkBatchWireGolden(t, New(pruned.engine, Config{CacheSize: -1}))
	})
	t.Run("coordinator", func(t *testing.T) {
		h, _ := newClusterHarness(t)
		checkBatchWireGolden(t, h.coord)
	})
}
