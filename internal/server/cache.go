package server

import (
	"container/list"
	"sync"
)

// cachedSearch is one prepared search outcome: the wire-ready result
// page plus the metadata (total, explain) the /v1 envelope carries.
// Entries are immutable once inserted — handlers must never mutate the
// slices they receive from the cache.
type cachedSearch struct {
	results []V1Result
	total   int
	explain *V1Explain
}

// lruCache is a fixed-capacity, thread-safe LRU map from canonicalized
// request key to prepared search outcome. Heavy-traffic keyword
// workloads are extremely head-skewed (the paper's §5.2 query-log
// analysis is exactly that observation), so a small LRU in front of the
// engine absorbs most of the load.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val *cachedSearch
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and promotes the key to most recent.
func (c *lruCache) get(key string) (*cachedSearch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes a key, evicting the least recently used entry
// when over capacity.
func (c *lruCache) put(key string, val *cachedSearch) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache (used when feedback invalidates rankings).
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
}
