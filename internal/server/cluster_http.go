package server

import (
	"fmt"
	"net/http"

	"qunits/internal/cluster"
)

// This file is the HTTP face of the cluster API: the /v1/partition/*
// RPC a partition node serves to its coordinator, and the GET
// /v1/cluster topology endpoint every role serves.

// checkPartitionRequest validates the RPC preamble shared by search and
// batch: protocol version, then selector. A selector mismatch means the
// coordinator and this node disagree about the topology — scoring the
// request anyway would silently drop or double-count shards, so it
// fails loudly instead.
func (s *Server) checkPartitionRequest(w http.ResponseWriter, proto int, sel cluster.Selector) bool {
	if proto != cluster.ProtoVersion {
		s.writeV1Error(w, http.StatusBadRequest, CodeUnsupportedProto,
			fmt.Sprintf("partition protocol %d not supported; this node speaks %d", proto, cluster.ProtoVersion))
		return false
	}
	if sel.Index != s.part.Set.Index || sel.Count != s.part.Set.Count {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("selector %d/%d does not match this node's %d/%d",
				sel.Index, sel.Count, s.part.Set.Index, s.part.Set.Count))
		return false
	}
	return true
}

// handlePartitionSearch serves POST /v1/partition/search: one page
// scored against this node's shard subset. No caching, no coalescing,
// no k clamping — this is the internal RPC, and the coordinator has
// already applied the public surface's defaulting and limits.
func (s *Server) handlePartitionSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/partition/search")
		return
	}
	var req cluster.PageRequest
	if err := decodeV1(r, &req); err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if !s.checkPartitionRequest(w, req.Proto, req.Partition) {
		return
	}
	reply, err := s.part.Search(r.Context(), req)
	if err != nil {
		status, code := v1ErrorFor(err)
		s.writeV1Error(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// handlePartitionBatch serves POST /v1/partition/batch: every item of a
// public batch scored against this node's shard subset in one engine
// pass. Item errors ride inside the reply; only a malformed request
// fails the call.
func (s *Server) handlePartitionBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/partition/batch")
		return
	}
	var req cluster.BatchRequest
	if err := decodeV1(r, &req); err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if !s.checkPartitionRequest(w, req.Proto, req.Partition) {
		return
	}
	reply, err := s.part.Batch(r.Context(), req)
	if err != nil {
		status, code := v1ErrorFor(err)
		s.writeV1Error(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// handlePartitionStats serves GET /v1/partition/stats.
func (s *Server) handlePartitionStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use GET /v1/partition/stats")
		return
	}
	stats, err := s.part.Stats(r.Context())
	if err != nil {
		status, code := v1ErrorFor(err)
		s.writeV1Error(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// V1ClusterPartition is one node's row in the GET /v1/cluster reply.
type V1ClusterPartition struct {
	// Index and Count are the node's shard-subset selector.
	Index int `json:"index"`
	Count int `json:"count"`
	// Healthy reports whether the node answered its stats probe; when
	// false, Error carries the failure and the gauges below are zero.
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Instances, Slots, and Tombstones are the node's engine occupancy.
	Instances  int `json:"instances"`
	Slots      int `json:"slots"`
	Tombstones int `json:"tombstones"`
	// WALSeq is the node's mutation-log position; Lag is how far it
	// trails the most advanced healthy node (0 on a non-coordinator,
	// which cannot see its peers).
	WALSeq uint64 `json:"wal_seq"`
	Lag    uint64 `json:"lag"`
	// AcceptsMutations marks the primary.
	AcceptsMutations bool `json:"accepts_mutations"`
}

// V1ClusterResponse is the GET /v1/cluster reply: the node's role and
// the topology it can see — itself on single and partition nodes, every
// partition on a coordinator.
type V1ClusterResponse struct {
	Role       string               `json:"role"`
	Proto      int                  `json:"proto"`
	Partitions []V1ClusterPartition `json:"partitions"`
}

// handleV1Cluster serves GET /v1/cluster on every role.
func (s *Server) handleV1Cluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use GET /v1/cluster")
		return
	}
	resp := V1ClusterResponse{Role: s.role, Proto: cluster.ProtoVersion, Partitions: []V1ClusterPartition{}}
	switch {
	case s.coord != nil:
		stats, errs := s.coord.StatsAll(r.Context())
		// Lag is relative to the most advanced healthy node: on a
		// converged cluster every row reads 0.
		var maxSeq uint64
		for _, st := range stats {
			if st != nil && st.WALSeq > maxSeq {
				maxSeq = st.WALSeq
			}
		}
		for i, st := range stats {
			if st == nil {
				resp.Partitions = append(resp.Partitions, V1ClusterPartition{
					Index: i, Count: s.coord.Partitions(), Error: errs[i].Error(),
				})
				continue
			}
			resp.Partitions = append(resp.Partitions, V1ClusterPartition{
				Index:            st.Index,
				Count:            st.Count,
				Healthy:          true,
				Instances:        st.Instances,
				Slots:            st.Slots,
				Tombstones:       st.Tombstones,
				WALSeq:           st.WALSeq,
				Lag:              maxSeq - st.WALSeq,
				AcceptsMutations: st.AcceptsMutations,
			})
		}
	case s.part != nil:
		st, err := s.part.Stats(r.Context())
		if err != nil {
			status, code := v1ErrorFor(err)
			s.writeV1Error(w, status, code, err.Error())
			return
		}
		resp.Partitions = append(resp.Partitions, V1ClusterPartition{
			Index:            st.Index,
			Count:            st.Count,
			Healthy:          true,
			Instances:        st.Instances,
			Slots:            st.Slots,
			Tombstones:       st.Tombstones,
			WALSeq:           st.WALSeq,
			AcceptsMutations: st.AcceptsMutations,
		})
	default:
		// A single node is its own one-partition cluster.
		ix := s.engine.IndexStats()
		resp.Partitions = append(resp.Partitions, V1ClusterPartition{
			Index:            0,
			Count:            1,
			Healthy:          true,
			Instances:        ix.Live,
			Slots:            ix.Slots,
			Tombstones:       ix.Tombstones,
			AcceptsMutations: true,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
