package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"testing"

	"qunits/internal/cluster"
	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/querylog"
	"qunits/internal/search"
)

// The distributed parity harness: a 3-partition cluster — partition 0
// the WAL-writing primary, partitions 1 and 2 followers tailing the
// log — behind a scatter-gather coordinator, driven over real HTTP
// (httptest servers, the /v1/partition RPC on the wire) against a
// single-node server over the same corpus. Every /v1 response must be
// byte-identical between the two stacks after scrubbing took_us,
// through mutations, compaction, and a follower restart from a
// bootstrap snapshot.

// swappableHandler lets a partition's backing server be replaced
// mid-test (the follower restart) without changing its URL, which the
// coordinator's clients captured at startup.
type swappableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swappableHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// clusterHarness is the assembled deployment plus the single-node
// control stack.
type clusterHarness struct {
	single  *Server // control: one engine, whole index
	coord   *Server // cluster entry point: /v1 over scatter-gather
	primary *Server // partition 0's server: /v1 mutations land here

	universe  *imdb.Universe
	walPath   string
	engines   [3]*search.Engine
	handlers  [3]*swappableHandler
	followers [2]*cluster.Follower // partitions 1 and 2
	wal       *cluster.WAL
}

func newClusterHarness(t *testing.T) (*clusterHarness, *querylog.Log) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	lcfg := querylog.DefaultGenConfig()
	lcfg.Volume = 600
	qlog := querylog.Generate(u, lcfg)

	newEngine := func() *search.Engine {
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			t.Fatal(err)
		}
		// Explicit shard count: replicas must agree on the index
		// geometry, and the default tracks GOMAXPROCS.
		e, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	h := &clusterHarness{universe: u, walPath: filepath.Join(t.TempDir(), "wal.log")}
	// Caches are off (-1) on every node: the coordinator cannot see
	// partition-side mutations to invalidate, and the scrubbed wire
	// bytes include the cached flag, so both stacks must agree on it.
	h.single = New(newEngine(), Config{CacheSize: -1})

	wal, err := cluster.OpenWAL(h.walPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wal.Close() })
	h.wal = wal

	clients := make([]cluster.Partition, 3)
	for i := 0; i < 3; i++ {
		h.engines[i] = newEngine()
		pcfg := PartitionConfig{Set: ir.ShardSet{Index: i, Count: 3}}
		if i == 0 {
			h.engines[i].SetMutationLog(wal)
			pcfg.Seq = wal.LastSeq
			pcfg.AcceptMutations = true
		} else {
			fol := cluster.NewFollower(h.engines[i], cluster.NewWALReader(h.walPath), 0)
			h.followers[i-1] = fol
			pcfg.Seq = fol.AppliedSeq
		}
		ps := NewPartitionServer(h.engines[i], Config{CacheSize: -1}, pcfg)
		if i == 0 {
			h.primary = ps
		}
		h.handlers[i] = &swappableHandler{h: ps}
		ts := httptest.NewServer(h.handlers[i])
		t.Cleanup(ts.Close)
		clients[i] = cluster.NewClient(ts.URL, i)
	}
	h.coord = NewCoordinatorServer(cluster.NewCoordinator(clients), Config{CacheSize: -1})
	return h, qlog
}

// catchUpFollowers drains the WAL into both followers, as the daemon's
// poll loop would between requests.
func (h *clusterHarness) catchUpFollowers(t *testing.T) {
	t.Helper()
	for i, fol := range h.followers {
		if _, err := fol.CatchUp(); err != nil {
			t.Fatalf("follower %d catch-up: %v", i+1, err)
		}
	}
}

// do drives one request against both stacks — searches to the
// coordinator, mutations to the primary partition — and requires equal
// status and scrubbed wire bytes; it returns the cluster stack's reply.
func (h *clusterHarness) do(t *testing.T, method, path, body string) (int, []byte) {
	t.Helper()
	clusterTarget := h.coord
	if method != http.MethodGet && path != "/v1/search" {
		clusterTarget = h.primary
	}
	cs, cb := replayPost(t, clusterTarget, method, path, body)
	ss, sb := replayPost(t, h.single, method, path, body)
	if cs != ss {
		t.Fatalf("%s %s: status %d cluster vs %d single\ncluster: %s\nsingle:  %s", method, path, cs, ss, cb, sb)
	}
	if got, want := scrubTiming(t, cb), scrubTiming(t, sb); got != want {
		t.Fatalf("%s %s: wire bytes differ\ncluster: %s\nsingle:  %s", method, path, got, want)
	}
	return cs, cb
}

// TestClusterWireParity is the tentpole's proof: the full replay
// workload (plain, paged, filtered, explain, and batch searches) with
// interleaved mutations produces byte-identical /v1 traffic from a
// 3-partition cluster and a single node — including across a
// mid-stream compaction and a follower restart from a bootstrap
// snapshot.
func TestClusterWireParity(t *testing.T) {
	h, qlog := newClusterHarness(t)
	bodies := replayRequests(qlog)
	if len(bodies) < 50 {
		t.Fatalf("workload too small: %d requests", len(bodies))
	}

	var feedbackID string
	if res := searchTopK(h.engines[0], "star wars cast", 1); len(res) > 0 {
		feedbackID = res[0].Instance.ID()
	}
	if feedbackID == "" {
		t.Fatal("no feedback target")
	}

	var createdIDs []string
	added, removed := 0, 0
	compacted := false
	restarted := false
	for i, body := range bodies {
		// Mirror a mutation through both stacks every 10th request, then
		// let the followers catch up before the next search hits them.
		if i%10 == 5 {
			var method, mPath, mBody string
			switch {
			case (i/10)%3 == 1 && len(createdIDs) > 0:
				method = http.MethodDelete
				mPath = "/v1/instances/" + url.PathEscape(createdIDs[len(createdIDs)-1])
				createdIDs = createdIDs[:len(createdIDs)-1]
				removed++
			case (i/10)%3 == 2:
				method, mPath = http.MethodPost, "/v1/feedback"
				mBody = fmt.Sprintf(`{"instance_id":%q,"positive":true}`, feedbackID)
			default:
				method, mPath = http.MethodPost, "/v1/instances"
				mBody = fmt.Sprintf(`{"definition":"movie-cast","anchor":"zz cluster movie %d"}`, i)
			}
			status, reply := h.do(t, method, mPath, mBody)
			if method == http.MethodPost && mPath == "/v1/instances" && status == http.StatusCreated {
				var created struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(reply, &created); err != nil {
					t.Fatal(err)
				}
				createdIDs = append(createdIDs, created.ID)
				added++
			}
			h.catchUpFollowers(t)
		}
		// Mid-stream, after some tombstones exist: compact both stacks.
		// The pass is WAL-logged, so the followers replay it and compact
		// at the same log position as the primary.
		if i == len(bodies)/2 && !compacted {
			compacted = true
			h.do(t, http.MethodPost, "/v1/compact", "")
			h.catchUpFollowers(t)
		}
		// Two thirds in: restart partition 2 from a bootstrap snapshot.
		// The replacement engine starts from the checkpoint, re-reads the
		// log from byte 0, skips every record the snapshot already holds,
		// and must land exactly where the old follower stood.
		if i == 2*len(bodies)/3 && !restarted {
			restarted = true
			h.restartFollowerFromSnapshot(t)
		}
		h.do(t, http.MethodPost, "/v1/search", body)
	}
	if !compacted || !restarted {
		t.Fatal("workload too short to reach the compaction/restart steps")
	}
	if added == 0 || removed == 0 {
		t.Fatalf("replay exercised %d adds and %d removals; need both", added, removed)
	}
}

// restartFollowerFromSnapshot checkpoints partition 2, discards its
// engine, restores a fresh one from the snapshot, and swaps it into the
// same URL the coordinator already points at.
func (h *clusterHarness) restartFollowerFromSnapshot(t *testing.T) {
	t.Helper()
	fol := h.followers[1]
	snap := filepath.Join(t.TempDir(), "boot.qsnp")
	if err := cluster.SaveBootstrap(snap, h.engines[2], fol.AppliedSeq); err != nil {
		t.Fatal(err)
	}
	engine, applied, err := cluster.LoadBootstrap(snap, h.universe.DB)
	if err != nil {
		t.Fatal(err)
	}
	if applied != fol.AppliedSeq() {
		t.Fatalf("bootstrap position %d, want %d", applied, fol.AppliedSeq())
	}
	h.engines[2] = engine
	restarted := cluster.NewFollower(engine, cluster.NewWALReader(h.walPath), applied)
	h.followers[1] = restarted
	ps := NewPartitionServer(engine, Config{CacheSize: -1}, PartitionConfig{
		Set: ir.ShardSet{Index: 2, Count: 3},
		Seq: restarted.AppliedSeq,
	})
	h.handlers[2].swap(ps)
}

// TestClusterTopologyEndpoint exercises GET /v1/cluster on all three
// roles: the coordinator sees every partition with primary flag and
// lag, a partition sees itself, and mutations sent to non-primary nodes
// are refused with the stable not_supported code.
func TestClusterTopologyEndpoint(t *testing.T) {
	h, _ := newClusterHarness(t)
	h.do(t, http.MethodPost, "/v1/instances", `{"definition":"movie-cast","anchor":"zz topo movie"}`)
	// Followers deliberately NOT caught up: partition 0 sits at seq 1,
	// the followers at 0, so the coordinator must report lag 1.
	code, body := replayPost(t, h.coord, http.MethodGet, "/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("coordinator /v1/cluster: %d %s", code, body)
	}
	var resp V1ClusterResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Role != RoleCoordinator || resp.Proto != cluster.ProtoVersion || len(resp.Partitions) != 3 {
		t.Fatalf("topology: %+v", resp)
	}
	for i, p := range resp.Partitions {
		if !p.Healthy || p.Index != i || p.Count != 3 {
			t.Fatalf("partition %d row: %+v", i, p)
		}
		if got := p.AcceptsMutations; got != (i == 0) {
			t.Fatalf("partition %d accepts_mutations=%v", i, got)
		}
		wantSeq, wantLag := uint64(0), uint64(1)
		if i == 0 {
			wantSeq, wantLag = 1, 0
		}
		if p.WALSeq != wantSeq || p.Lag != wantLag {
			t.Fatalf("partition %d: wal_seq=%d lag=%d, want %d/%d", i, p.WALSeq, p.Lag, wantSeq, wantLag)
		}
	}

	// A partition node reports only itself.
	code, body = replayPost(t, h.primary, http.MethodGet, "/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("partition /v1/cluster: %d %s", code, body)
	}
	var self V1ClusterResponse
	if err := json.Unmarshal(body, &self); err != nil {
		t.Fatal(err)
	}
	if self.Role != RolePartition || len(self.Partitions) != 1 || self.Partitions[0].Index != 0 {
		t.Fatalf("partition topology: %+v", self)
	}

	// A single node is its own one-partition cluster.
	code, body = replayPost(t, h.single, http.MethodGet, "/v1/cluster", "")
	if code != http.StatusOK {
		t.Fatalf("single /v1/cluster: %d %s", code, body)
	}
	var single V1ClusterResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.Role != RoleSingle || len(single.Partitions) != 1 || !single.Partitions[0].AcceptsMutations {
		t.Fatalf("single topology: %+v", single)
	}
}

// TestClusterMutationGating: the coordinator holds no engine and
// followers hold no authority, so mutations against either must be
// refused with stable codes — and the refusal must not disturb state.
func TestClusterMutationGating(t *testing.T) {
	h, _ := newClusterHarness(t)
	assertRefused := func(s *Server, method, path, body string) {
		t.Helper()
		code, reply := replayPost(t, s, method, path, body)
		if code != http.StatusNotImplemented {
			t.Fatalf("%s %s: status %d, want 501: %s", method, path, code, reply)
		}
		var envelope struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(reply, &envelope); err != nil {
			t.Fatal(err)
		}
		if envelope.Error.Code != CodeNotSupported {
			t.Fatalf("%s %s: code %q, want %q", method, path, envelope.Error.Code, CodeNotSupported)
		}
	}
	followerURL := func(i int) *Server { return h.handlers[i].h.(*Server) }
	for _, s := range []*Server{h.coord, followerURL(1), followerURL(2)} {
		assertRefused(s, http.MethodPost, "/v1/feedback", `{"instance_id":"x","positive":true}`)
		assertRefused(s, http.MethodPost, "/v1/instances", `{"definition":"movie-cast","anchor":"zz nope"}`)
		assertRefused(s, http.MethodPost, "/v1/compact", "")
	}
	// Instance reads need an engine: refused on the coordinator only.
	assertRefused(h.coord, http.MethodGet, "/v1/instances/whatever", "")
	if code, _ := replayPost(t, followerURL(1), http.MethodGet, "/v1/instances/nope", ""); code != http.StatusNotFound {
		t.Fatalf("follower instance read: status %d, want 404", code)
	}
	// The primary still accepts mutations.
	if code, _ := replayPost(t, h.primary, http.MethodPost, "/v1/feedback",
		fmt.Sprintf(`{"instance_id":%q,"positive":true}`, searchTopK(h.engines[0], "star wars cast", 1)[0].Instance.ID())); code != http.StatusOK {
		t.Fatalf("primary feedback: status %d, want 200", code)
	}
}

// TestPartitionRPCRejectsMismatches: the internal RPC fails loudly on a
// protocol or topology disagreement instead of silently mis-scoring.
func TestPartitionRPCRejectsMismatches(t *testing.T) {
	h, _ := newClusterHarness(t)
	post := func(body string) (int, string) {
		code, reply := replayPost(t, h.primary, http.MethodPost, "/v1/partition/search", body)
		var envelope struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(reply, &envelope); err != nil {
			t.Fatalf("not an error envelope: %s", reply)
		}
		return code, envelope.Error.Code
	}
	if code, ec := post(`{"proto":99,"partition":{"index":0,"count":3},"query":"x","k":1}`); code != http.StatusBadRequest || ec != CodeUnsupportedProto {
		t.Fatalf("bad proto: %d %s", code, ec)
	}
	if code, ec := post(fmt.Sprintf(`{"proto":%d,"partition":{"index":1,"count":3},"query":"x","k":1}`, cluster.ProtoVersion)); code != http.StatusBadRequest || ec != CodeInvalidArgument {
		t.Fatalf("selector mismatch: %d %s", code, ec)
	}
	if code, ec := post(fmt.Sprintf(`{"proto":%d,"partition":{"index":0,"count":3},"query":"  ","k":1}`, cluster.ProtoVersion)); code != http.StatusBadRequest || ec != CodeInvalidArgument {
		t.Fatalf("empty query: %d %s", code, ec)
	}
}
