package server

import (
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

// churnTombstones creates count fresh instances over /v1 and deletes
// them again, leaving count tombstoned slots behind.
func churnTombstones(t *testing.T, s *Server, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		anchor := fmt.Sprintf("compact churn %d", i)
		rec, body := post(t, s, "/v1/instances", fmt.Sprintf(`{"definition":"movie-cast","anchor":%q}`, anchor))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %d: status %d: %s", i, rec.Code, body)
		}
		rec, body = do(t, s, http.MethodDelete, "/v1/instances/"+pathEscape("movie-cast:"+anchor), "")
		if rec.Code != http.StatusOK {
			t.Fatalf("delete %d: status %d: %s", i, rec.Code, body)
		}
	}
}

// TestV1CompactEndpoint drives the admin surface end to end: tombstones
// accumulate over /v1/instances, POST /v1/compact reclaims them, /stats
// reflects the pass, and — the serving contract — the /v1/search wire
// bytes are identical before and after (cache disabled, so both passes
// hit the engine).
func TestV1CompactEndpoint(t *testing.T) {
	s := New(newPrivateEngine(t), Config{CacheSize: -1})
	churnTombstones(t, s, 5)

	st := decodeBody[StatsResponse](t, statsBody(t, s))
	if st.IndexTombstones < 5 {
		t.Fatalf("expected >= 5 tombstones, stats %+v", st)
	}
	queries := []string{
		`{"query":"star wars cast","k":5}`,
		`{"query":"george clooney","k":3,"offset":1}`,
		`{"query":"soundtrack","k":10,"explain":true}`,
	}
	before := make([]V1SearchResponse, len(queries))
	for i, q := range queries {
		_, body := post(t, s, "/v1/search", q)
		before[i] = decodeBody[V1SearchResponse](t, body)
	}

	rec, body := post(t, s, "/v1/compact", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status %d: %s", rec.Code, body)
	}
	res := decodeBody[V1CompactResponse](t, body)
	if res.ReclaimedSlots < 5 || res.SlotsAfter != res.Live || res.Compactions != 1 {
		t.Fatalf("compact response %+v", res)
	}
	if res.SlotsBefore != res.SlotsAfter+res.ReclaimedSlots {
		t.Fatalf("slot arithmetic broken: %+v", res)
	}

	st = decodeBody[StatsResponse](t, statsBody(t, s))
	if st.IndexTombstones != 0 || st.Compactions != 1 || st.SlotsReclaimed != int64(res.ReclaimedSlots) {
		t.Fatalf("post-compaction stats %+v", st)
	}
	if st.IndexSlots != st.Instances {
		t.Fatalf("compacted index not dense: %+v", st)
	}

	for i, q := range queries {
		_, body := post(t, s, "/v1/search", q)
		after := decodeBody[V1SearchResponse](t, body)
		// TookUS is wall time; everything else must be identical.
		after.TookUS = before[i].TookUS
		if !reflect.DeepEqual(after, before[i]) {
			t.Fatalf("query %s changed across compaction:\nbefore %+v\nafter  %+v", q, before[i], after)
		}
	}
}

// TestV1CompactKeepsCache pins the no-purge contract: compaction leaves
// cached results valid (it is bitwise score-preserving), so a repeat of
// a pre-compaction query is served as a cache hit.
func TestV1CompactKeepsCache(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})
	churnTombstones(t, s, 3)
	q := `{"query":"star wars cast","k":5}`
	_, body := post(t, s, "/v1/search", q)
	first := decodeBody[V1SearchResponse](t, body)
	if first.Cached {
		t.Fatal("first search unexpectedly cached")
	}
	if rec, body := post(t, s, "/v1/compact", ""); rec.Code != http.StatusOK {
		t.Fatalf("compact: %d %s", rec.Code, body)
	}
	_, body = post(t, s, "/v1/search", q)
	second := decodeBody[V1SearchResponse](t, body)
	if !second.Cached {
		t.Fatal("compaction purged the result cache; parity makes that unnecessary")
	}
	if !reflect.DeepEqual(second.Results, first.Results) {
		t.Fatalf("cached results changed across compaction")
	}
}

// TestV1CompactMethodNotAllowed: the admin endpoint is POST-only.
func TestV1CompactMethodNotAllowed(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})
	rec, body := get(t, s, "/v1/compact")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if env := decodeBody[v1Envelope](t, body); env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("error envelope: %s", body)
	}
}

// TestStatsMonotoneUnderCompactionChurn hammers the server with
// concurrent searches, instance churn, and compaction passes, polling
// /stats throughout: every counter documented monotone must never step
// backwards, and the occupancy gauges must stay coherent.
func TestStatsMonotoneUnderCompactionChurn(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				post(t, s, "/v1/search", fmt.Sprintf(`{"query":"star wars cast","k":%d}`, 1+(i%7)))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			anchor := fmt.Sprintf("monotone churn %d", i)
			post(t, s, "/v1/instances", fmt.Sprintf(`{"definition":"movie-cast","anchor":%q}`, anchor))
			do(t, s, http.MethodDelete, "/v1/instances/"+pathEscape("movie-cast:"+anchor), "")
			if i%3 == 0 {
				post(t, s, "/v1/compact", "")
			}
		}
		close(stop)
	}()

	var prev StatsResponse
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		st := decodeBody[StatsResponse](t, statsBody(t, s))
		if st.Queries < prev.Queries || st.CacheHits < prev.CacheHits ||
			st.CacheMisses < prev.CacheMisses || st.Compactions < prev.Compactions ||
			st.SlotsReclaimed < prev.SlotsReclaimed || st.InstanceAdds < prev.InstanceAdds ||
			st.InstanceRemovals < prev.InstanceRemovals {
			t.Fatalf("counter stepped backwards:\nprev %+v\nnow  %+v", prev, st)
		}
		if st.IndexTombstones < 0 || st.Instances > st.IndexSlots {
			t.Fatalf("incoherent occupancy gauges: %+v", st)
		}
		prev = st
	}
	wg.Wait()
	final := decodeBody[StatsResponse](t, statsBody(t, s))
	if final.Compactions < 4 {
		t.Fatalf("expected >= 4 compaction passes, stats %+v", final)
	}
}

// statsBody fetches /stats.
func statsBody(t *testing.T, s *Server) []byte {
	t.Helper()
	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	return body
}
