package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/search"
	"qunits/internal/snapshot"
)

func do(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestV1InstanceCreateMakesSearchableWithoutRestart(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})

	// Before: the anchor is unknown — nothing served carries its label.
	_, body := post(t, s, "/v1/search", `{"query":"zz live endpoint movie","k":50}`)
	for _, r := range decodeBody[V1SearchResponse](t, body).Results {
		if r.Label == "zz live endpoint movie" {
			t.Fatalf("anchor already searchable before create: %s", body)
		}
	}

	rec, body := post(t, s, "/v1/instances", `{"definition":"movie-cast","anchor":"zz live endpoint movie"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d, want 201 (body %s)", rec.Code, body)
	}
	created := decodeBody[V1Instance](t, body)
	if created.Definition != "movie-cast" || created.Label != "zz live endpoint movie" {
		t.Fatalf("created instance: %+v", created)
	}

	// After: searchable on the very next request, no restart.
	_, body = post(t, s, "/v1/search", `{"query":"zz live endpoint movie","k":3}`)
	resp := decodeBody[V1SearchResponse](t, body)
	if len(resp.Results) == 0 || resp.Results[0].ID != created.ID {
		t.Fatalf("created instance not searchable: %s", body)
	}

	// And dereferencable.
	rec, body = do(t, s, http.MethodGet, "/v1/instances/"+pathEscape(created.ID), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET created instance: %d (body %s)", rec.Code, body)
	}
}

func TestV1InstanceCreateErrors(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})

	rec, body := post(t, s, "/v1/instances", `{"anchor":"x"}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidArgument)

	rec, body = post(t, s, "/v1/instances", `{"definition":"nope","anchor":"x"}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeUnknownDefinition)

	rec, body = post(t, s, "/v1/instances", `{"definition":"movie-cast"}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidArgument)

	rec, body = post(t, s, "/v1/instances", `not json`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidJSON)

	rec, body = do(t, s, http.MethodGet, "/v1/instances", "")
	wantV1Error(t, rec, body, http.StatusMethodNotAllowed, CodeMethodNotAllowed)

	// Duplicate create: 409 with the stable already_exists code.
	if rec, body = post(t, s, "/v1/instances", `{"definition":"movie-cast","anchor":"zz dup"}`); rec.Code != http.StatusCreated {
		t.Fatalf("first create: %d (body %s)", rec.Code, body)
	}
	rec, body = post(t, s, "/v1/instances", `{"definition":"movie-cast","anchor":"zz dup"}`)
	wantV1Error(t, rec, body, http.StatusConflict, CodeAlreadyExists)
}

func TestV1InstanceDelete(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})

	_, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":1}`)
	resp := decodeBody[V1SearchResponse](t, body)
	if len(resp.Results) == 0 {
		t.Fatal("fixture query found nothing")
	}
	id := resp.Results[0].ID

	rec, body := do(t, s, http.MethodDelete, "/v1/instances/"+pathEscape(id), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE: %d (body %s)", rec.Code, body)
	}
	removed := decodeBody[V1InstanceRemoveResponse](t, body)
	if removed.ID != id || removed.Instances <= 0 {
		t.Fatalf("remove reply: %+v", removed)
	}

	// The removed instance is out of search results immediately (the
	// cache was purged, not just bypassed).
	_, body = post(t, s, "/v1/search", `{"query":"star wars cast","k":20}`)
	for _, r := range decodeBody[V1SearchResponse](t, body).Results {
		if r.ID == id {
			t.Fatalf("removed instance %q still served", id)
		}
	}

	// Deleting again: 404.
	rec, body = do(t, s, http.MethodDelete, "/v1/instances/"+pathEscape(id), "")
	wantV1Error(t, rec, body, http.StatusNotFound, CodeNotFound)

	// Mutation counters surface in /stats.
	_, body = do(t, s, http.MethodGet, "/stats", "")
	stats := decodeBody[StatsResponse](t, body)
	if stats.InstanceRemovals != 1 {
		t.Fatalf("stats.instance_removals = %d, want 1", stats.InstanceRemovals)
	}
}

// volatileFields zeroes the per-request timing (and only it) so byte
// comparison is meaningful: took_us is wall-clock time, everything else
// on the wire must be identical.
var volatileFields = regexp.MustCompile(`"took_us":\d+`)

func normalizeWire(b []byte) []byte {
	return volatileFields.ReplaceAll(b, []byte(`"took_us":0`))
}

// TestV1SearchByteParityAcrossSnapshotReload is the acceptance check at
// the HTTP layer: a server over an engine restored from a snapshot (in
// a "fresh process" — the database regenerated from scratch) returns
// byte-identical /v1/search responses, explain payloads included.
func TestV1SearchByteParityAcrossSnapshotReload(t *testing.T) {
	gen := func() *search.Engine {
		u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			t.Fatal(err)
		}
		e, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms(), Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	orig := gen()
	origSrv := New(orig, Config{CacheSize: -1}) // no cache: exercise the engine on every request

	// Shift live state so the snapshot carries more than a fresh build.
	if rec, body := post(t, origSrv, "/v1/instances", `{"definition":"movie-cast","anchor":"zz parity movie"}`); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d (body %s)", rec.Code, body)
	}

	var snap bytes.Buffer
	if err := snapshot.SaveEngine(&snap, orig); err != nil {
		t.Fatal(err)
	}
	freshDB := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5}).DB
	loaded, err := snapshot.LoadEngine(bytes.NewReader(snap.Bytes()), freshDB)
	if err != nil {
		t.Fatal(err)
	}
	loadedSrv := New(loaded, Config{CacheSize: -1})

	for _, reqBody := range []string{
		`{"query":"star wars cast","k":10,"explain":true}`,
		`{"query":"george clooney","k":10,"explain":true}`,
		`{"query":"zz parity movie","k":5,"explain":true}`,
		`{"query":"cast","k":20,"offset":3,"explain":true}`,
		`{"queries":[{"query":"star wars cast","k":3,"explain":true},{"query":"tom hanks","k":3}]}`,
	} {
		_, want := post(t, origSrv, "/v1/search", reqBody)
		_, got := post(t, loadedSrv, "/v1/search", reqBody)
		if !bytes.Equal(normalizeWire(want), normalizeWire(got)) {
			t.Fatalf("wire bytes differ for %s:\n orig: %s\nloaded: %s", reqBody, want, got)
		}
	}
}

func pathEscape(s string) string { return url.PathEscape(s) }
