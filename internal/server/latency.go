package server

import (
	"net/http"
	"time"

	"qunits/internal/loadgen"
)

// latencySet tracks one request-latency histogram per registered
// endpoint pattern, sharing cmd/loadgen's lock-free log-bucketed
// histogram so server-side /stats quantiles and client-side load
// reports are directly comparable. The map is built once at mux
// registration and read-only afterwards; the histograms themselves are
// safe for arbitrary handler concurrency.
type latencySet struct {
	hists map[string]*loadgen.Histogram
}

func newLatencySet() *latencySet {
	return &latencySet{hists: map[string]*loadgen.Histogram{}}
}

// wrap times every request to pattern into its histogram.
func (l *latencySet) wrap(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := &loadgen.Histogram{}
	l.hists[pattern] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Record(time.Since(t0).Microseconds())
	}
}

// summaries digests every endpoint that has served at least one
// request; untouched endpoints are omitted rather than reported as
// all-zero.
func (l *latencySet) summaries() map[string]loadgen.Summary {
	out := make(map[string]loadgen.Summary)
	for p, h := range l.hists {
		if h.Count() > 0 {
			out[p] = h.Summarize()
		}
	}
	return out
}
