package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func TestStatsReportsPerEndpointLatency(t *testing.T) {
	srv := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, httptest.NewRequest("GET", "/search?q=george+clooney", nil))
		if rr.Code != 200 {
			t.Fatalf("search %d: HTTP %d", i, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	lat, ok := stats.Latency["/search"]
	if !ok {
		t.Fatalf("no /search latency in stats: %v", stats.Latency)
	}
	if lat.Count != 5 {
		t.Errorf("/search latency count = %d, want 5", lat.Count)
	}
	if lat.P50 < 0 || lat.P99 < lat.P50 || lat.Max < lat.P99 {
		t.Errorf("non-monotone quantiles: %+v", lat)
	}
	// Endpoints never hit must be omitted, not reported as zeros.
	if _, ok := stats.Latency["/v1/feedback"]; ok {
		t.Error("untouched endpoint reported latency")
	}
}

func TestStatsLatencyOmittedWhenIdle(t *testing.T) {
	srv := newTestServer(t, Config{})
	// The /stats request itself is timed, but its own histogram is read
	// before the request finishes — so a first scrape sees no endpoints.
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["latency_us"]; ok {
		t.Errorf("idle server emitted latency_us: %s", raw["latency_us"])
	}
	// A second scrape sees the first.
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats.Latency["/stats"]; !ok {
		t.Errorf("second scrape missing /stats latency: %v", stats.Latency)
	}
}

func TestLatencyTrackingUnderConcurrency(t *testing.T) {
	srv := newTestServer(t, Config{})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				rr := httptest.NewRecorder()
				q := fmt.Sprintf("/search?q=movie+%d+%d", id, i)
				srv.ServeHTTP(rr, httptest.NewRequest("GET", q, nil))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.Latency["/search"].Count; got != 200 {
		t.Errorf("/search latency count = %d, want 200", got)
	}
}
