package server

import (
	"context"
	"sync"

	"qunits/internal/querylog"
	"qunits/internal/search"
)

// Result-cache prewarming. Keyword workloads are extremely head-skewed
// (the paper's §5.2 query-log analysis: 98,549 queries, 46,901 unique —
// the head repeats constantly), so a server that boots cold pays the
// full engine cost for exactly the queries it will be asked most often.
// Prewarm replays the head of an aggregated query log through the same
// batched backend path /v1/search uses, so the first real request for a
// head query is already a cache hit.
//
// The replay deliberately reuses the batch machinery rather than a
// per-query loop: on an engine-backed node the misses of each chunk
// execute as ONE shared posting pass (see search.Engine.BatchSearch),
// which makes warming a 1024-entry head an amortized, bounded amount of
// engine work rather than 1024 serial searches.

// prewarmState remembers the registered log so the head can be replayed
// again after a compaction pass.
type prewarmState struct {
	mu   sync.Mutex
	log  *querylog.Log
	topN int
}

// Prewarm replays the log's most frequent queries — the zipfian head —
// through the batch search path, populating the result cache, and
// registers the log so the server re-warms itself after every
// compaction pass (compaction usually follows churn, and churn purges
// the cache). Each entry is warmed as the request real head traffic
// sends: the bare query with the server's default k, which is the
// canonical key both the legacy route and a field-free /v1 request map
// to.
//
// topN caps how many entries to replay; 0 (or anything past the cache
// capacity) means "as many as the cache can hold". Per-item failures
// (a query of nothing but stopwords, say) are skipped — a log line must
// never prevent boot. The returned count is the number of entries
// actually warmed; already-cached entries are not re-executed.
func (s *Server) Prewarm(ctx context.Context, l *querylog.Log, topN int) (int, error) {
	s.prewarm.mu.Lock()
	s.prewarm.log, s.prewarm.topN = l, topN
	s.prewarm.mu.Unlock()
	return s.replayHead(ctx, l, topN)
}

// replayHead runs one warming pass over the log's head.
func (s *Server) replayHead(ctx context.Context, l *querylog.Log, topN int) (int, error) {
	if l == nil || s.cfg.CacheSize <= 0 {
		// No cache, nothing to warm (coordinators and followers default
		// the cache off; see NewCoordinatorServer / NewPartitionServer).
		return 0, nil
	}
	n := topN
	if n <= 0 || n > s.cfg.CacheSize {
		n = s.cfg.CacheSize
	}
	n = min(n, len(l.Entries))
	warmed := 0
	for start := 0; start < n; start += s.cfg.MaxBatch {
		chunk := l.Entries[start:min(start+s.cfg.MaxBatch, n)]
		reqs := make([]search.Request, 0, len(chunk))
		keys := make([]string, 0, len(chunk))
		for _, e := range chunk {
			req := search.Request{Query: e.Query, K: s.cfg.DefaultK}
			key := req.CacheKey()
			if _, ok := s.cache.get(key); ok {
				continue
			}
			reqs = append(reqs, req)
			keys = append(keys, key)
		}
		if len(reqs) == 0 {
			continue
		}
		// Snapshot the purge epoch around the engine pass, exactly as the
		// serving paths do: a mutation that lands mid-warm invalidates
		// everything this pass computed, so stop rather than insert stale
		// pages (the post-compaction rewarm will not race itself — the
		// mutation's own purge already emptied what we wrote).
		epoch := s.purgeEpoch.Load()
		outcomes, err := s.backend.batch(ctx, reqs)
		if err != nil {
			return warmed, err
		}
		if s.purgeEpoch.Load() != epoch {
			return warmed, nil
		}
		for i, o := range outcomes {
			if o.err != nil {
				continue
			}
			s.cache.put(keys[i], o.entry)
			warmed++
		}
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
	}
	return warmed, nil
}

// rewarm replays the registered head again, best-effort. Called after a
// compaction pass: the pass itself never stales the cache (it is
// parity-proven), but compaction typically runs after mutation churn,
// and every mutation purged the cache — so the head is cold exactly
// when the operator compacts. Errors are deliberately swallowed: a
// failed warm just means the next real queries miss, which is the state
// the server was in anyway.
func (s *Server) rewarm() {
	s.prewarm.mu.Lock()
	l, n := s.prewarm.log, s.prewarm.topN
	s.prewarm.mu.Unlock()
	if l == nil {
		return
	}
	_, _ = s.replayHead(context.Background(), l, n)
}
