package server

import (
	"context"
	"net/http"
	"testing"

	"qunits/internal/querylog"
)

// headLog builds an aggregated log directly; entries must already be in
// the canonical order (frequency descending, then query text).
func headLog(entries ...querylog.Entry) *querylog.Log {
	l := &querylog.Log{Entries: entries}
	for _, e := range entries {
		l.Total += e.Freq
	}
	return l
}

// TestPrewarmPopulatesCache: replaying a log head makes its queries
// cache hits on both routes, and a junk entry (blank query) is skipped
// without failing the pass.
func TestPrewarmPopulatesCache(t *testing.T) {
	s := newTestServer(t, Config{})
	l := headLog(
		querylog.Entry{Query: "star wars cast", Freq: 9},
		querylog.Entry{Query: "george clooney", Freq: 5},
		querylog.Entry{Query: "   ", Freq: 3}, // blank: engine rejects it
		querylog.Entry{Query: "casablanca", Freq: 2},
	)
	warmed, err := s.Prewarm(context.Background(), l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 3 {
		t.Fatalf("warmed %d entries, want 3 (stopword entry skipped)", warmed)
	}
	if got := s.cache.len(); got != 3 {
		t.Fatalf("cache holds %d entries, want 3", got)
	}
	// The legacy route with the default k maps to the exact key the
	// replay warmed.
	rec, body := get(t, s, "/search?q=star+wars+cast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if resp := decodeBody[SearchResponse](t, body); !resp.Cached {
		t.Fatalf("legacy head query missed the warmed cache: %+v", resp)
	}
	// So does a field-free /v1 request.
	rec, body = post(t, s, "/v1/search", `{"query":"george clooney"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if resp := decodeBody[V1SearchResponse](t, body); !resp.Cached {
		t.Fatalf("/v1 head query missed the warmed cache: %+v", resp)
	}
	// Warming again is a no-op: everything is already cached.
	again, err := s.Prewarm(context.Background(), l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("second pass warmed %d entries, want 0", again)
	}
}

// TestPrewarmRespectsTopN: the cap limits the replay to the head.
func TestPrewarmRespectsTopN(t *testing.T) {
	s := newTestServer(t, Config{})
	l := headLog(
		querylog.Entry{Query: "star wars cast", Freq: 9},
		querylog.Entry{Query: "casablanca", Freq: 2},
	)
	warmed, err := s.Prewarm(context.Background(), l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 || s.cache.len() != 1 {
		t.Fatalf("warmed=%d cache=%d, want 1 and 1", warmed, s.cache.len())
	}
}

// TestPrewarmWithoutCache: on a node whose cache is disabled (followers,
// coordinators) the replay is a clean no-op.
func TestPrewarmWithoutCache(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	l := headLog(querylog.Entry{Query: "star wars cast", Freq: 9})
	warmed, err := s.Prewarm(context.Background(), l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 0 {
		t.Fatalf("warmed %d entries with caching disabled", warmed)
	}
}

// TestCompactRewarms: once a log is registered, a compaction pass
// re-warms the head — the operational moment the cache is cold, because
// the churn that motivated compacting purged it.
func TestCompactRewarms(t *testing.T) {
	s := New(newPrivateEngine(t), Config{})
	l := headLog(
		querylog.Entry{Query: "star wars cast", Freq: 9},
		querylog.Entry{Query: "george clooney", Freq: 5},
	)
	if _, err := s.Prewarm(context.Background(), l, 0); err != nil {
		t.Fatal(err)
	}
	// Churn: a mutation purges the cache (simulated directly).
	s.invalidateResults()
	if s.cache.len() != 0 {
		t.Fatalf("cache not purged: %d entries", s.cache.len())
	}
	rec, body := post(t, s, "/v1/compact", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status %d: %s", rec.Code, body)
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("compaction re-warmed %d entries, want 2", got)
	}
	rec, body = post(t, s, "/v1/search", `{"query":"star wars cast"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if resp := decodeBody[V1SearchResponse](t, body); !resp.Cached {
		t.Fatalf("head query missed after post-compaction rewarm: %+v", resp)
	}
}
