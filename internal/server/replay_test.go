package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/querylog"
	"qunits/internal/search"
)

// Workload replay: a generated query log (the paper's §5.2 synthetic
// AOL/IMDb workload) is driven through two identically-configured
// stacks — one engine on the pruned top-k path, one forced through the
// exhaustive oracle scorer — at both the engine and HTTP layers.
// The /v1 wire bytes must golden-diff clean: after scrubbing the one
// timing field, every response byte must be identical.

// replayStack is one engine+server pair.
type replayStack struct {
	engine *search.Engine
	server *Server
}

func newReplayStacks(t *testing.T) (pruned, oracle replayStack, log *querylog.Log) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	cfg := querylog.DefaultGenConfig()
	cfg.Volume = 600
	log = querylog.Generate(u, cfg)
	build := func(exhaustive bool) replayStack {
		// Independent catalog derivations (deterministic, identical):
		// feedback mutates definitions in place and must not leak
		// between the two stacks through shared pointers.
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			t.Fatal(err)
		}
		e, err := search.NewEngine(cat, search.Options{
			Synonyms:         imdb.AttributeSynonyms(),
			ExhaustiveScorer: exhaustive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return replayStack{engine: e, server: New(e, Config{})}
	}
	return build(false), build(true), log
}

// scrubTiming removes the non-deterministic took_us fields from a JSON
// document and re-marshals it canonically (Go maps marshal with sorted
// keys), so two responses that differ only in timing compare equal.
func scrubTiming(t *testing.T, raw []byte) string {
	t.Helper()
	var v interface{}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, raw)
	}
	var walk func(x interface{})
	walk = func(x interface{}) {
		switch n := x.(type) {
		case map[string]interface{}:
			delete(n, "took_us")
			for _, c := range n {
				walk(c)
			}
		case []interface{}:
			for _, c := range n {
				walk(c)
			}
		}
	}
	walk(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// post drives one HTTP request and returns status and body.
func replayPost(t *testing.T, s *Server, method, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// replayRequests shapes the query log into /v1/search request bodies:
// plain queries, paged and filtered variants, explain mode, and
// batches — every k kept small so the pruned path actually prunes.
func replayRequests(log *querylog.Log) []string {
	var bodies []string
	entries := log.Entries
	if len(entries) > 120 {
		entries = entries[:120]
	}
	esc := func(q string) string {
		b, _ := json.Marshal(q)
		return string(b)
	}
	for i, e := range entries {
		if strings.TrimSpace(e.Query) == "" {
			continue
		}
		q := esc(e.Query)
		switch i % 5 {
		case 0:
			bodies = append(bodies, fmt.Sprintf(`{"query":%s,"k":5}`, q))
		case 1:
			bodies = append(bodies, fmt.Sprintf(`{"query":%s,"k":3,"explain":true}`, q))
		case 2:
			bodies = append(bodies, fmt.Sprintf(`{"query":%s,"k":10,"offset":2}`, q))
		case 3:
			bodies = append(bodies, fmt.Sprintf(`{"query":%s,"k":5,"filter":{"anchor_types":["movie.title"]}}`, q))
		case 4:
			// Batch: this query plus its two successors, mixed shapes.
			j, k := (i+1)%len(entries), (i+2)%len(entries)
			bodies = append(bodies, fmt.Sprintf(
				`{"queries":[{"query":%s,"k":4},{"query":%s,"k":2,"explain":true},{"query":%s,"k":6,"offset":1}]}`,
				q, esc(entries[j].Query), esc(entries[k].Query)))
		}
	}
	return bodies
}

// TestWorkloadReplayWireParity drives the generated workload through
// both HTTP stacks and diffs the wire bytes, interleaving mirrored
// mutations (feedback, live instance add/remove) so the replay also
// covers tombstoned postings and shifted utilities.
func TestWorkloadReplayWireParity(t *testing.T) {
	pruned, oracle, log := newReplayStacks(t)
	bodies := replayRequests(log)
	if len(bodies) < 50 {
		t.Fatalf("workload too small: %d requests", len(bodies))
	}
	var feedbackID string
	if res := searchTopK(pruned.engine, "star wars cast", 1); len(res) > 0 {
		feedbackID = res[0].Instance.ID()
	}
	var createdIDs []string
	removed := 0
	for i, body := range bodies {
		// Every 10th request, mirror a mutation over HTTP first.
		if i%10 == 5 {
			var mPath, mBody, method string
			switch {
			case (i/10)%3 == 1 && len(createdIDs) > 0:
				method = http.MethodDelete
				mPath = "/v1/instances/" + url.PathEscape(createdIDs[len(createdIDs)-1])
				createdIDs = createdIDs[:len(createdIDs)-1]
				removed++
			case (i/10)%3 == 2 && feedbackID != "":
				method, mPath = http.MethodPost, "/v1/feedback"
				mBody = fmt.Sprintf(`{"instance_id":%q,"positive":true}`, feedbackID)
			default:
				method, mPath = http.MethodPost, "/v1/instances"
				mBody = fmt.Sprintf(`{"definition":"movie-cast","anchor":"zz replay movie %d"}`, i)
			}
			cs, rb := replayPost(t, pruned.server, method, mPath, mBody)
			co, ro := replayPost(t, oracle.server, method, mPath, mBody)
			if cs != co {
				t.Fatalf("mutation %s %s: status %d pruned vs %d oracle", method, mPath, cs, co)
			}
			if got, want := scrubTiming(t, rb), scrubTiming(t, ro); got != want {
				t.Fatalf("mutation %s %s: wire bytes differ\npruned: %s\noracle: %s", method, mPath, got, want)
			}
			if method == http.MethodPost && mPath == "/v1/instances" && cs == http.StatusCreated {
				var created struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(rb, &created); err != nil {
					t.Fatal(err)
				}
				createdIDs = append(createdIDs, created.ID)
			}
		}
		statusP, respP := replayPost(t, pruned.server, http.MethodPost, "/v1/search", body)
		statusO, respO := replayPost(t, oracle.server, http.MethodPost, "/v1/search", body)
		if statusP != statusO {
			t.Fatalf("request %d %s: status %d pruned vs %d oracle", i, body, statusP, statusO)
		}
		if got, want := scrubTiming(t, respP), scrubTiming(t, respO); got != want {
			t.Fatalf("request %d %s: wire bytes differ\npruned: %s\noracle: %s", i, body, got, want)
		}
	}
	if removed == 0 {
		t.Fatal("replay exercised no instance removals")
	}
}

// TestWorkloadReplayEngineParity replays the raw query log at the
// engine layer — no HTTP, no cache — asserting bitwise response parity
// between the pruned and oracle engines, including the exact Total.
func TestWorkloadReplayEngineParity(t *testing.T) {
	pruned, oracle, log := newReplayStacks(t)
	ctx := context.Background()
	n := 0
	for _, e := range log.Entries {
		if strings.TrimSpace(e.Query) == "" {
			continue
		}
		if n++; n > 200 {
			break
		}
		for _, k := range []int{1, 5, 10} {
			req := search.Request{Query: e.Query, K: k}
			want, errO := oracle.engine.Search(ctx, req)
			got, errP := pruned.engine.Search(ctx, req)
			if (errO == nil) != (errP == nil) {
				t.Fatalf("%q k=%d: pruned err %v, oracle err %v", e.Query, k, errP, errO)
			}
			if errO != nil {
				continue
			}
			if got.Total != want.Total || len(got.Results) != len(want.Results) {
				t.Fatalf("%q k=%d: total/len mismatch: %d/%d vs %d/%d",
					e.Query, k, got.Total, len(got.Results), want.Total, len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i].Instance.ID() != want.Results[i].Instance.ID() ||
					got.Results[i].Score != want.Results[i].Score {
					t.Fatalf("%q k=%d result %d: %q %v vs %q %v", e.Query, k, i,
						got.Results[i].Instance.ID(), got.Results[i].Score,
						want.Results[i].Instance.ID(), want.Results[i].Score)
				}
			}
		}
	}
}

// TestBatchSharesOneEnginePass sanity-checks the batch path against
// single-request responses: identical items in and out of a batch must
// carry identical payloads (scrubbed of timing), and batch items must
// dedupe into one engine evaluation without changing the wire shape.
func TestBatchSharesOneEnginePass(t *testing.T) {
	pruned, _, _ := newReplayStacks(t)
	s := New(pruned.engine, Config{CacheSize: -1})
	single := `{"query":"star wars cast","k":5}`
	batch := `{"queries":[{"query":"star wars cast","k":5},{"query":"star wars cast","k":5},{"query":"george clooney","k":3}]}`
	_, sResp := replayPost(t, s, http.MethodPost, "/v1/search", single)
	code, bResp := replayPost(t, s, http.MethodPost, "/v1/search", batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, bResp)
	}
	var parsed struct {
		Items []struct {
			Response json.RawMessage `json:"response"`
			Error    json.RawMessage `json:"error"`
		} `json:"items"`
	}
	if err := json.Unmarshal(bResp, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Items) != 3 {
		t.Fatalf("%d batch items", len(parsed.Items))
	}
	want := scrubTiming(t, sResp)
	if got := scrubTiming(t, parsed.Items[0].Response); got != want {
		t.Fatalf("batch item differs from single request:\nbatch:  %s\nsingle: %s", got, want)
	}
	if got0, got1 := scrubTiming(t, parsed.Items[0].Response), scrubTiming(t, parsed.Items[1].Response); got0 != got1 {
		t.Fatalf("duplicate batch items differ:\n%s\n%s", got0, got1)
	}
}

// searchTopK is the test-local replacement for the deleted SearchTopK
// shim: a positional top-k call that flattens errors to no results.
func searchTopK(e *search.Engine, query string, k int) []search.Result {
	resp, err := e.Search(context.Background(), search.Request{Query: query, K: k})
	if err != nil {
		return nil
	}
	return resp.Results
}
