// Package server exposes a qunit search engine over HTTP — the qunitsd
// daemon's core. It is the paper's presentation layer turned service:
// "the results of the keyword query are presented as ranked qunit
// instances", here as JSON.
//
// Endpoints:
//
//	GET /search?q=<query>&k=<n>  ranked qunit instances as JSON
//	GET /healthz                 liveness probe
//	GET /stats                   serving counters and engine stats
//
// The handler is safe for arbitrary concurrency: the engine is scored
// shard-parallel and guarded internally, identical concurrent queries
// collapse into one engine call (singleflight), and an LRU cache serves
// repeated queries without touching the engine at all.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"qunits/internal/search"
)

// Config tunes a Server.
type Config struct {
	// CacheSize is the LRU capacity in distinct (query, k) entries;
	// 0 means 1024, negative disables caching.
	CacheSize int
	// DefaultK is the result count when the request omits k; 0 means 10.
	DefaultK int
	// MaxK caps the per-request k; 0 means 100.
	MaxK int
}

// Server serves a search engine over HTTP. Create with New; it
// implements http.Handler.
type Server struct {
	engine *search.Engine
	cfg    Config
	cache  *lruCache
	flight *flightGroup
	mux    *http.ServeMux
	start  time.Time

	queries     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	dedupShared atomic.Int64
	badRequests atomic.Int64
	purgeEpoch  atomic.Int64
}

// New returns a Server over the engine.
func New(engine *search.Engine, cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.DefaultK == 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 100
	}
	s := &Server{
		engine: engine,
		cfg:    cfg,
		cache:  newLRUCache(cfg.CacheSize),
		flight: newFlightGroup(),
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchResult is one ranked qunit instance on the wire.
type SearchResult struct {
	// ID is the instance's unique name (definition plus parameters).
	ID string `json:"id"`
	// Label is the instance's display label (its anchor value).
	Label string `json:"label"`
	// Definition names the qunit type this instance belongs to.
	Definition string `json:"definition"`
	// Score is the final combined relevance score.
	Score float64 `json:"score"`
	// IRScore is the raw IR component of the score.
	IRScore float64 `json:"ir_score"`
	// TypeAffinity is the qunit-type identification component.
	TypeAffinity float64 `json:"type_affinity"`
	// Snippet is the leading portion of the instance's rendered text.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the /search reply.
type SearchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Cached  bool           `json:"cached"`
	TookUS  int64          `json:"took_us"`
	Results []SearchResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

const snippetLen = 200

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing required parameter q"})
		return
	}
	k := s.cfg.DefaultK
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			s.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid k %q: want a positive integer", raw)})
			return
		}
		k = parsed
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	s.queries.Add(1)

	key := strconv.Itoa(k) + "\x00" + q
	results, cached := s.cache.get(key)
	if cached {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
		var shared bool
		results, shared = s.flight.do(key, func() []SearchResult {
			// Snapshot the purge epoch before searching: if feedback
			// purges the cache while this search runs, the result was
			// computed against stale utilities and must not be
			// re-inserted after the purge.
			epoch := s.purgeEpoch.Load()
			res := s.toWire(s.engine.Search(q, k))
			if s.purgeEpoch.Load() == epoch {
				s.cache.put(key, res)
			}
			return res
		})
		if shared {
			s.dedupShared.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, SearchResponse{
		Query:   q,
		K:       k,
		Cached:  cached,
		TookUS:  time.Since(started).Microseconds(),
		Results: results,
	})
}

// toWire converts engine results to their wire form.
func (s *Server) toWire(results []search.Result) []SearchResult {
	out := make([]SearchResult, len(results))
	for i, r := range results {
		snippet := truncateRunes(r.Instance.Rendered.Text, snippetLen)
		out[i] = SearchResult{
			ID:           r.Instance.ID(),
			Label:        r.Instance.Label(),
			Definition:   r.Instance.Def.Name,
			Score:        r.Score,
			IRScore:      r.IRScore,
			TypeAffinity: r.TypeAffinity,
			Snippet:      snippet,
		}
	}
	return out
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status    string `json:"status"`
	Instances int    `json:"instances"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Instances: s.engine.InstanceCount()})
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	Queries       int64   `json:"queries"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	DedupShared   int64   `json:"dedup_shared"`
	BadRequests   int64   `json:"bad_requests"`
	CacheLen      int     `json:"cache_len"`
	CacheCap      int     `json:"cache_cap"`
	Instances     int     `json:"instances"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Queries:       s.queries.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		DedupShared:   s.dedupShared.Load(),
		BadRequests:   s.badRequests.Load(),
		CacheLen:      s.cache.len(),
		CacheCap:      s.cfg.CacheSize,
		Instances:     s.engine.InstanceCount(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// ApplyFeedback forwards a feedback signal to the engine and purges the
// result cache: a utility update can reorder any query's results. The
// epoch bump keeps searches that started before the update from
// re-inserting their now-stale rankings after the purge.
func (s *Server) ApplyFeedback(instanceID string, positive bool) (float64, error) {
	util, err := s.engine.ApplyFeedback(instanceID, positive, search.Feedback{})
	if err == nil {
		s.purgeEpoch.Add(1)
		s.cache.purge()
	}
	return util, err
}

// truncateRunes cuts s to at most max bytes without splitting a rune,
// so snippets stay valid UTF-8.
func truncateRunes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	for max > 0 && !utf8.RuneStart(s[max]) {
		max--
	}
	return s[:max]
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
