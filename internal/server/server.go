// Package server exposes a qunit search engine over HTTP — the qunitsd
// daemon's core. It is the paper's presentation layer turned service:
// "the results of the keyword query are presented as ranked qunit
// instances", here as JSON.
//
// The stable, versioned surface is /v1:
//
//	POST /v1/search              structured search: single or batched
//	                             queries, offset pagination, definition
//	                             and anchor-type filters, explain mode
//	POST /v1/feedback            relevance feedback on one instance
//	POST /v1/instances           derive and index one new qunit instance
//	                             into the live engine (no restart)
//	GET  /v1/instances/{id}      one qunit instance in full
//	DELETE /v1/instances/{id}    remove one instance from the live engine
//
// Plus the unversioned operational endpoints and the legacy alias:
//
//	GET /search?q=<query>&k=<n>  pre-/v1 wire format, kept byte-compatible
//	GET /healthz                 liveness probe
//	GET /stats                   serving counters, engine stats, and
//	                             per-endpoint latency quantiles
//
// Every /v1 error is a structured envelope {"error":{"code","message"}}
// with a stable machine-readable code. All search traffic — legacy and
// /v1 alike — flows through one core path: the LRU result cache and the
// singleflight group are keyed by the full canonicalized request
// (query, k, offset, filters, explain), so requests that differ in any
// result-affecting dimension never collide.
//
// The handler is safe for arbitrary concurrency: the engine is scored
// shard-parallel and guarded internally, identical concurrent requests
// collapse into one engine call (singleflight), and the LRU cache
// serves repeated requests without touching the engine at all.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"qunits/internal/cluster"
	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/loadgen"
	"qunits/internal/search"
)

// Config tunes a Server.
type Config struct {
	// CacheSize is the LRU capacity in distinct canonicalized-request
	// entries; 0 means 1024, negative disables caching.
	CacheSize int
	// DefaultK is the result count when the request omits k; 0 means 10.
	DefaultK int
	// MaxK caps the per-request k; 0 means 100.
	MaxK int
	// MaxBatch caps the number of queries in one /v1/search batch;
	// 0 means 32.
	MaxBatch int
}

// A Server's role decides which endpoints it serves and where search
// traffic goes (see New, NewPartitionServer, NewCoordinatorServer).
const (
	// RoleSingle is the classic one-process deployment: full engine,
	// full API.
	RoleSingle = "single"
	// RolePartition is one scoring node of a cluster: the full /v1
	// surface over its full engine replica, plus the /v1/partition RPC
	// over its shard subset. Mutations are only accepted on the primary.
	RolePartition = "partition"
	// RoleCoordinator fans /v1/search out to partition servers and
	// serves no engine-local endpoints.
	RoleCoordinator = "coordinator"
)

// Server serves a search engine over HTTP. Create with New,
// NewPartitionServer, or NewCoordinatorServer; it implements
// http.Handler.
type Server struct {
	role    string
	engine  *search.Engine // nil on a coordinator
	backend searchBackend
	coord   *cluster.Coordinator    // non-nil only on a coordinator
	part    *cluster.LocalPartition // non-nil only on a partition node
	cfg     Config
	cache   *lruCache
	flight  *flightGroup
	mux     *http.ServeMux
	latency *latencySet
	start   time.Time
	// acceptMutations gates the mutation endpoints: true on a single
	// node and on a cluster's primary partition, false on followers and
	// coordinators.
	acceptMutations bool
	// prewarm remembers the query log registered via Prewarm so the
	// result cache can be re-warmed after compaction passes.
	prewarm prewarmState

	queries      atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	dedupShared  atomic.Int64
	badRequests  atomic.Int64
	feedbacks    atomic.Int64
	instanceAdds atomic.Int64
	instanceRems atomic.Int64
	purgeEpoch   atomic.Int64
}

// New returns a single-node Server over the engine.
func New(engine *search.Engine, cfg Config) *Server {
	return newServer(RoleSingle, engine, nil, nil, cfg)
}

// PartitionConfig shapes a partition node.
type PartitionConfig struct {
	// Set is the shard subset this node scores for the cluster; it must
	// be the subset the coordinator assigns this node's index.
	Set ir.ShardSet
	// Seq reports the node's WAL position for stats and lag: the WAL's
	// LastSeq on the primary, the follower's AppliedSeq elsewhere. Nil
	// reports 0.
	Seq func() uint64
	// AcceptMutations marks the primary. On any other node the mutation
	// endpoints refuse with CodeNotSupported — a mutation applied to a
	// follower would fork it from the primary's WAL.
	AcceptMutations bool
}

// NewPartitionServer returns a Server for one scoring node of a
// cluster: the full single-node /v1 surface over its engine replica,
// plus the /v1/partition RPC the coordinator calls. The result cache
// defaults OFF (cfg.CacheSize 0) on non-primary nodes: WAL replay
// mutates the engine without passing through this server, so cached
// pages could go stale invisibly.
func NewPartitionServer(engine *search.Engine, cfg Config, pcfg PartitionConfig) *Server {
	if cfg.CacheSize == 0 && !pcfg.AcceptMutations {
		cfg.CacheSize = -1
	}
	part := &cluster.LocalPartition{
		Engine:           engine,
		Set:              pcfg.Set,
		Seq:              pcfg.Seq,
		AcceptsMutations: pcfg.AcceptMutations,
	}
	s := newServer(RolePartition, engine, nil, part, cfg)
	if !pcfg.AcceptMutations {
		s.acceptMutations = false
	}
	return s
}

// NewCoordinatorServer returns a Server that fans /v1/search out to the
// coordinator's partitions. It owns no engine: mutation and instance
// endpoints refuse with CodeNotSupported (send them to the primary
// partition), and the result cache defaults OFF (cfg.CacheSize 0)
// because primary-side mutations cannot invalidate it here.
func NewCoordinatorServer(coord *cluster.Coordinator, cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = -1
	}
	s := newServer(RoleCoordinator, nil, coord, nil, cfg)
	s.acceptMutations = false
	return s
}

// newServer builds a Server for one role.
func newServer(role string, engine *search.Engine, coord *cluster.Coordinator, part *cluster.LocalPartition, cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.DefaultK == 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 100
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	s := &Server{
		role:            role,
		engine:          engine,
		coord:           coord,
		part:            part,
		cfg:             cfg,
		cache:           newLRUCache(cfg.CacheSize),
		flight:          newFlightGroup(),
		mux:             http.NewServeMux(),
		latency:         newLatencySet(),
		start:           time.Now(),
		acceptMutations: engine != nil,
	}
	if coord != nil {
		s.backend = coordBackend{coord: coord}
	} else {
		s.backend = engineBackend{engine: engine}
	}
	// Every endpoint registers through the latency wrapper, so /stats
	// reports per-endpoint quantiles without handlers opting in.
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.latency.wrap(pattern, h))
	}
	handle("/search", s.handleLegacySearch)
	handle("/healthz", s.handleHealthz)
	handle("/stats", s.handleStats)
	handle("/v1/search", s.handleV1Search)
	handle("/v1/feedback", s.handleV1Feedback)
	handle("/v1/compact", s.handleV1Compact)
	handle("/v1/instances", s.handleV1InstanceCreate)
	handle("/v1/instances/", s.handleV1Instance)
	handle("/v1/cluster", s.handleV1Cluster)
	if part != nil {
		handle("/v1/partition/search", s.handlePartitionSearch)
		handle("/v1/partition/batch", s.handlePartitionBatch)
		handle("/v1/partition/stats", s.handlePartitionStats)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SearchResult is one ranked qunit instance on the wire. This is the
// legacy GET /search result shape and the common core of the /v1 result;
// its field set and order are frozen for wire compatibility.
type SearchResult struct {
	// ID is the instance's unique name (definition plus parameters).
	ID string `json:"id"`
	// Label is the instance's display label (its anchor value).
	Label string `json:"label"`
	// Definition names the qunit type this instance belongs to.
	Definition string `json:"definition"`
	// Score is the final combined relevance score.
	Score float64 `json:"score"`
	// IRScore is the raw IR component of the score.
	IRScore float64 `json:"ir_score"`
	// TypeAffinity is the qunit-type identification component.
	TypeAffinity float64 `json:"type_affinity"`
	// Snippet is the leading portion of the instance's rendered text.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the legacy GET /search reply; frozen for wire
// compatibility.
type SearchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Cached  bool           `json:"cached"`
	TookUS  int64          `json:"took_us"`
	Results []SearchResult `json:"results"`
}

// errorResponse is the legacy flat error shape; /v1 uses v1Envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// runSearch is the single core every search endpoint flows through:
// cache lookup by the request's canonical key, singleflight coalescing
// of concurrent identical misses, and the engine call. The bool reports
// whether the outcome came from the cache.
func (s *Server) runSearch(ctx context.Context, req search.Request) (*cachedSearch, bool, error) {
	key := req.CacheKey()
	if entry, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		return entry, true, nil
	}
	s.cacheMisses.Add(1)
	entry, shared, err := s.flight.do(key, func() (*cachedSearch, error) {
		// Snapshot the purge epoch before searching: if feedback purges
		// the cache while this search runs, the result was computed
		// against stale utilities and must not be re-inserted after the
		// purge.
		epoch := s.purgeEpoch.Load()
		// Detach cancellation: the leader's work is shared by every
		// coalesced follower and feeds the cache, so one client hanging
		// up must not fail the flight for the others.
		entry, err := s.backend.search(context.WithoutCancel(ctx), req)
		if err != nil {
			return nil, err
		}
		if s.purgeEpoch.Load() == epoch {
			s.cache.put(key, entry)
		}
		return entry, nil
	})
	if shared {
		s.dedupShared.Add(1)
	}
	return entry, false, err
}

// legacyResults projects the /v1 result page down to the frozen legacy
// shape.
func legacyResults(entry *cachedSearch) []SearchResult {
	out := make([]SearchResult, len(entry.results))
	for i, r := range entry.results {
		out[i] = r.SearchResult
	}
	return out
}

// handleLegacySearch serves the pre-/v1 GET /search contract, unchanged
// on the wire, as a thin alias over the same core path /v1 uses.
func (s *Server) handleLegacySearch(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing required parameter q"})
		return
	}
	k := s.cfg.DefaultK
	if raw := r.URL.Query().Get("k"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			s.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid k %q: want a positive integer", raw)})
			return
		}
		k = parsed
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	s.queries.Add(1)

	results := []SearchResult{}
	var cached bool
	entry, hit, err := s.runSearch(r.Context(), search.Request{Query: q, K: k})
	switch {
	case errors.Is(err, search.ErrEmptyQuery):
		// The pre-Request engine answered whitespace-only queries with
		// zero results; keep that wire behavior on the legacy route.
	case err != nil:
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	default:
		results = legacyResults(entry)
		cached = hit
	}
	writeJSON(w, http.StatusOK, SearchResponse{
		Query:   q,
		K:       k,
		Cached:  cached,
		TookUS:  time.Since(started).Microseconds(),
		Results: results,
	})
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status    string `json:"status"`
	Instances int    `json:"instances"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A coordinator owns no engine; it is alive when it can answer at
	// all, and reports zero local instances.
	instances := 0
	if s.engine != nil {
		instances = s.engine.InstanceCount()
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Instances: instances})
}

// StatsResponse is the /stats reply. Queries through SlotsReclaimed are
// monotone counters; the remaining fields are point-in-time gauges
// (IndexTombstones in particular drops back to zero on every
// compaction pass).
type StatsResponse struct {
	Queries          int64   `json:"queries"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	DedupShared      int64   `json:"dedup_shared"`
	BadRequests      int64   `json:"bad_requests"`
	Feedbacks        int64   `json:"feedbacks"`
	InstanceAdds     int64   `json:"instance_adds"`
	InstanceRemovals int64   `json:"instance_removals"`
	Compactions      int64   `json:"compactions"`
	SlotsReclaimed   int64   `json:"slots_reclaimed"`
	CacheLen         int     `json:"cache_len"`
	CacheCap         int     `json:"cache_cap"`
	Instances        int     `json:"instances"`
	IndexSlots       int     `json:"index_slots"`
	IndexTombstones  int     `json:"index_tombstones"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	// Latency holds per-endpoint request-latency digests (microseconds)
	// for every endpoint that has served at least one request.
	Latency map[string]loadgen.Summary `json:"latency_us,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Queries:          s.queries.Load(),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMisses.Load(),
		DedupShared:      s.dedupShared.Load(),
		BadRequests:      s.badRequests.Load(),
		Feedbacks:        s.feedbacks.Load(),
		InstanceAdds:     s.instanceAdds.Load(),
		InstanceRemovals: s.instanceRems.Load(),
		CacheLen:         s.cache.len(),
		CacheCap:         s.cfg.CacheSize,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Latency:          s.latency.summaries(),
	}
	// Engine gauges stay zero on a coordinator: per-node occupancy lives
	// behind GET /v1/cluster there.
	if s.engine != nil {
		ix := s.engine.IndexStats()
		resp.Compactions = s.engine.Compactions()
		resp.SlotsReclaimed = s.engine.SlotsReclaimed()
		// Instances comes from the same IndexStats snapshot as the slot
		// gauges (live instances and index documents are only ever
		// updated together), so the three occupancy numbers are always
		// mutually coherent even while mutations race this handler.
		resp.Instances = ix.Live
		resp.IndexSlots = ix.Slots
		resp.IndexTombstones = ix.Tombstones
	}
	writeJSON(w, http.StatusOK, resp)
}

// invalidateResults empties the result cache after an engine mutation.
// The epoch bump keeps searches that started before the mutation from
// re-inserting their now-stale rankings after the purge.
//
// The purge is deliberately total, not per-entry: a feedback signal
// reorders every request whose results contain the shifted qunit type,
// and an instance add/remove shifts the collection statistics (document
// count, frequencies, average length) that every BM25 score depends on
// — so after any mutation there is no cache entry that is provably
// still valid.
func (s *Server) invalidateResults() {
	s.purgeEpoch.Add(1)
	s.cache.purge()
}

// ApplyFeedback forwards a feedback signal to the engine and purges the
// result cache: a utility update can reorder any request's results.
func (s *Server) ApplyFeedback(instanceID string, positive bool) (float64, error) {
	util, err := s.engine.ApplyFeedback(instanceID, positive, search.Feedback{})
	if err == nil {
		s.feedbacks.Add(1)
		s.invalidateResults()
	}
	return util, err
}

// AddInstance derives and indexes one new qunit instance into the live
// engine and purges the result cache (collection statistics shifted).
func (s *Server) AddInstance(definition, anchor string) (*core.Instance, error) {
	inst, err := s.engine.AddAnchorInstance(definition, anchor)
	if err == nil {
		s.instanceAdds.Add(1)
		s.invalidateResults()
	}
	return inst, err
}

// RemoveInstance deletes one instance from the live engine and purges
// the result cache (collection statistics shifted).
func (s *Server) RemoveInstance(id string) error {
	err := s.engine.RemoveInstance(id)
	if err == nil {
		s.instanceRems.Add(1)
		s.invalidateResults()
	}
	return err
}

// Compact runs one engine compaction pass. The result cache is
// deliberately NOT purged: compaction is parity-proven to leave every
// search response bitwise identical (see search.Engine.Compact), so no
// cached entry can be stale — the pass changes the cost of a miss,
// never the content of a hit. When a query log was registered via
// Prewarm, the pass re-warms the head afterwards: compaction tends to
// follow mutation churn, and the mutations purged the cache.
func (s *Server) Compact() (search.CompactionResult, error) {
	res, err := s.engine.Compact()
	if err == nil {
		s.rewarm()
	}
	return res, err
}

// truncateRunes cuts s to at most max bytes without splitting a rune,
// so snippets stay valid UTF-8.
func truncateRunes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	for max > 0 && !utf8.RuneStart(s[max]) {
		max--
	}
	return s[:max]
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
