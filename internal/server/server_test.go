package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"testing"
	"time"
	"unicode/utf8"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/search"
)

var (
	engineOnce sync.Once
	testEngine *search.Engine
)

// sharedEngine builds one small engine for every test; the engine is
// immutable aside from feedback, which only TestFeedbackPurgesCache uses
// via its own server's cache.
func sharedEngine(t *testing.T) *search.Engine {
	t.Helper()
	engineOnce.Do(func() {
		u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
		cat, err := derive.Expert{}.Derive(u.DB)
		if err != nil {
			panic(err)
		}
		testEngine, err = search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
		if err != nil {
			panic(err)
		}
	})
	return testEngine
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(sharedEngine(t), cfg)
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.Bytes()
}

func TestSearchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, body := get(t, s, "/search?q=star+wars+cast&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "star wars cast" || resp.K != 3 || resp.Cached {
		t.Fatalf("resp header wrong: %+v", resp)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	top := resp.Results[0]
	if top.Definition != "movie-cast" || top.Label != "star wars" {
		t.Fatalf("top result = %+v", top)
	}
	if top.Score <= 0 || top.ID == "" {
		t.Fatalf("degenerate top result: %+v", top)
	}
	// Results must be ordered by score desc.
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Score > resp.Results[i-1].Score {
			t.Fatalf("results out of order at %d: %v", i, resp.Results)
		}
	}
}

func TestSearchCaching(t *testing.T) {
	s := newTestServer(t, Config{})
	_, first := get(t, s, "/search?q=george+clooney&k=5")
	rec, second := get(t, s, "/search?q=george+clooney&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var a, b SearchResponse
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	if a.Cached || !b.Cached {
		t.Fatalf("cached flags: first=%v second=%v", a.Cached, b.Cached)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("cached result diverges: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("cached result %d differs: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
	// Different k is a different cache entry.
	_, third := get(t, s, "/search?q=george+clooney&k=2")
	var c SearchResponse
	if err := json.Unmarshal(third, &c); err != nil {
		t.Fatal(err)
	}
	if c.Cached {
		t.Fatal("k=2 should miss the k=5 entry")
	}
	var st StatsResponse
	_, body := get(t, s, "/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearchBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/search", "/search?q=", "/search?q=x&k=zero", "/search?q=x&k=-3", "/search?q=x&k=0"} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", path, rec.Code, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: not a JSON error: %s", path, body)
		}
	}
	var st StatsResponse
	_, body := get(t, s, "/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.BadRequests != 5 || st.Queries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKCapped(t *testing.T) {
	s := newTestServer(t, Config{MaxK: 4})
	_, body := get(t, s, "/search?q=movies&k=9999")
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 4 || len(resp.Results) > 4 {
		t.Fatalf("k not capped: k=%d results=%d", resp.K, len(resp.Results))
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Instances == 0 {
		t.Fatalf("health = %+v", h)
	}
}

// TestConcurrentRequests hammers the full handler from many goroutines
// over a mixed query set; under -race this validates the whole serving
// path (engine, cache, singleflight, counters).
func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 8})
	queries := []string{"star wars cast", "george clooney", "movies", "soundtrack", "box office"}
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				q := queries[(g+i)%len(queries)]
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?q="+url.QueryEscape(q)+"&k=5", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("status %d for %q", rec.Code, q)
				}
			}
		}(g)
	}
	wg.Wait()
	var st StatsResponse
	_, body := get(t, s, "/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 24*15 {
		t.Fatalf("queries = %d, want %d", st.Queries, 24*15)
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hit+miss %d+%d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
}

func TestFeedbackPurgesCache(t *testing.T) {
	s := newTestServer(t, Config{})
	_, body := get(t, s, "/search?q=star+wars+cast&k=1")
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if s.cache.len() == 0 {
		t.Fatal("cache empty after search")
	}
	if _, err := s.ApplyFeedback(resp.Results[0].ID, true); err != nil {
		t.Fatal(err)
	}
	if s.cache.len() != 0 {
		t.Fatal("cache not purged after feedback")
	}
	if _, err := s.ApplyFeedback("no-such-instance", true); err == nil {
		t.Fatal("feedback on unknown instance accepted")
	}
}

// --- unit tests for the cache and singleflight primitives -----------------

// entryWithID builds a one-result cache entry for primitive tests.
func entryWithID(id string) *cachedSearch {
	return &cachedSearch{results: []V1Result{{SearchResult: SearchResult{ID: id}}}, total: 1}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", entryWithID("a"))
	c.put("b", entryWithID("b"))
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.put("c", entryWithID("c")) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	for _, k := range []string{"a", "c"} {
		if v, ok := c.get(k); !ok || v.results[0].ID != k {
			t.Fatalf("%s missing or wrong", k)
		}
	}
	c.put("a", entryWithID("a2")) // refresh in place
	if v, _ := c.get("a"); v.results[0].ID != "a2" {
		t.Fatal("refresh did not replace value")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestFlightGroupDedupes(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	entered := make(chan struct{})
	var calls int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.do("k", func() (*cachedSearch, error) {
			calls++
			close(entered)
			<-release
			return entryWithID("v"), nil
		})
	}()
	<-entered // the leader is inside fn; followers must now share
	const followers = 8
	sharedCount := make(chan bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.do("k", func() (*cachedSearch, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || len(val.results) != 1 || val.results[0].ID != "v" {
				t.Errorf("follower got %v, %v", val, err)
			}
			sharedCount <- shared
		}()
	}
	// Release only once every follower is parked on the inflight call,
	// so the test is deterministic regardless of scheduling.
	for {
		g.mu.Lock()
		waiting := g.calls["k"].waiters
		g.mu.Unlock()
		if waiting == followers {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i := 0; i < followers; i++ {
		if !<-sharedCount {
			t.Fatal("follower did not share")
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	// After completion the key is free again: a new call recomputes.
	val, shared, _ := g.do("k", func() (*cachedSearch, error) { return entryWithID("v2"), nil })
	if shared || val.results[0].ID != "v2" {
		t.Fatalf("post-flight call: shared=%v val=%v", shared, val)
	}
}

func TestFlightGroupSurvivesPanic(t *testing.T) {
	g := newFlightGroup()
	func() {
		defer func() { recover() }()
		g.do("k", func() (*cachedSearch, error) { panic("engine blew up") })
	}()
	// The key must be free again — a fresh call computes normally
	// instead of joining a dead flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		val, shared, _ := g.do("k", func() (*cachedSearch, error) { return entryWithID("ok"), nil })
		if shared || len(val.results) != 1 || val.results[0].ID != "ok" {
			t.Errorf("post-panic call: shared=%v val=%v", shared, val)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic call hung: key leaked in flight group")
	}
}

func TestTruncateRunes(t *testing.T) {
	cases := []struct {
		in   string
		max  int
		want string
	}{
		{"short", 10, "short"},
		{"exactly", 7, "exactly"},
		{"abcdef", 3, "abc"},
		{"héllo", 2, "h"},  // é is 2 bytes starting at offset 1
		{"héllo", 3, "hé"}, // clean boundary
		{"日本語", 4, "日"},    // 3-byte runes
		{"日本語", 5, "日"},    // mid-rune: back up
		{"日本語", 6, "日本"},   // clean boundary
	}
	for _, c := range cases {
		got := truncateRunes(c.in, c.max)
		if got != c.want {
			t.Errorf("truncateRunes(%q, %d) = %q, want %q", c.in, c.max, got, c.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncateRunes(%q, %d) = %q is invalid UTF-8", c.in, c.max, got)
		}
	}
}

func TestStatsShape(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 7})
	_, body := get(t, s, "/stats")
	var raw map[string]interface{}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"queries", "cache_hits", "cache_misses", "dedup_shared", "bad_requests", "cache_len", "cache_cap", "instances", "uptime_seconds", "compactions", "slots_reclaimed", "index_slots", "index_tombstones"} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("stats missing %q: %s", field, body)
		}
	}
	if int(raw["cache_cap"].(float64)) != 7 {
		t.Fatalf("cache_cap = %v", raw["cache_cap"])
	}
}

// TestEndToEndHTTP runs the server on a real listener — the same wiring
// cmd/qunitsd uses — and exercises it over TCP.
func TestEndToEndHTTP(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, Config{}))
	defer ts.Close()
	resp, err := http.Get(fmt.Sprintf("%s/search?q=%s", ts.URL, "star+wars+cast"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results over TCP")
	}
}
