package server

import "sync"

// flightGroup deduplicates concurrent identical work: while one
// goroutine computes the value for a key, any other goroutine asking for
// the same key blocks and shares the result instead of recomputing it.
// Under a thundering herd of identical requests the engine runs each
// request once. (Same contract as golang.org/x/sync/singleflight,
// reduced to what the server needs — no external dependency.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	val     *cachedSearch
	err     error
	waiters int // goroutines sharing this call, beyond the leader
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per concurrent set of callers with the same key;
// followers share the leader's value and error. The shared return
// reports whether this caller shared another's result.
func (g *flightGroup) do(key string, fn func() (*cachedSearch, error)) (val *cachedSearch, shared bool, err error) {
	g.mu.Lock()
	if c, inflight := g.calls[key]; inflight {
		c.waiters++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	// Release waiters and the key even if fn panics: otherwise every
	// current and future caller for this key would block forever.
	defer func() {
		c.wg.Done()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
