package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"qunits/internal/cluster"
	"qunits/internal/search"
)

// Stable /v1 error codes. Clients should branch on these, never on
// message text. The values are defined in internal/cluster — the public
// surface and the partition RPC share one vocabulary — and aliased here
// so existing call sites and external references keep compiling.
const (
	CodeInvalidArgument   = cluster.CodeInvalidArgument
	CodeInvalidJSON       = cluster.CodeInvalidJSON
	CodeUnknownDefinition = cluster.CodeUnknownDefinition
	CodeNotFound          = cluster.CodeNotFound
	CodeAlreadyExists     = cluster.CodeAlreadyExists
	CodeMethodNotAllowed  = cluster.CodeMethodNotAllowed
	CodeNotSupported      = cluster.CodeNotSupported
	CodeUnavailable       = cluster.CodeUnavailable
	CodeUnsupportedProto  = cluster.CodeUnsupportedProto
	CodeInternal          = cluster.CodeInternal
)

// V1Error is the structured error carried by every /v1 error envelope.
type V1Error struct {
	// Code is one of the stable Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description; not stable.
	Message string `json:"message"`
}

// v1Envelope wraps a V1Error as the body of an error response.
type v1Envelope struct {
	Error V1Error `json:"error"`
}

// V1Filter restricts a /v1 search by qunit definition and/or anchor
// type; both lists OR within themselves and AND across.
type V1Filter struct {
	// Definitions lists qunit definition names; unknown names fail with
	// CodeUnknownDefinition.
	Definitions []string `json:"definitions,omitempty"`
	// AnchorTypes lists anchor schema types ("movie.title").
	AnchorTypes []string `json:"anchor_types,omitempty"`
}

// V1SearchRequest is the POST /v1/search body. Set Query for a single
// search or Queries for a batch — exactly one of the two.
type V1SearchRequest struct {
	// Query is the keyword query (single mode).
	Query string `json:"query,omitempty"`
	// K is the page size; omitted means the server default, and values
	// above the server maximum are clamped to it.
	K *int `json:"k,omitempty"`
	// Offset skips that many ranked results — offset pagination.
	Offset int `json:"offset,omitempty"`
	// Filter restricts the searched catalog subset.
	Filter *V1Filter `json:"filter,omitempty"`
	// Explain asks for segmentation, type affinities, and per-result
	// score components.
	Explain bool `json:"explain,omitempty"`
	// Queries holds the per-item requests in batch mode. Items must not
	// themselves be batches.
	Queries []V1SearchRequest `json:"queries,omitempty"`
}

// V1Result is one ranked instance on the /v1 wire: the legacy result
// shape plus the score-component breakdown.
type V1Result struct {
	SearchResult
	// Utility is the instance's utility at scoring time.
	Utility float64 `json:"utility"`
	// TypeFactor is the type-identification multiplier folded into
	// Score: 1 + TypeBoost*TypeAffinity. Together with utility_blend
	// and anchor_boost it makes the score exactly reconstructible:
	// score = ir_score * type_factor * utility_blend * anchor_boost.
	TypeFactor float64 `json:"type_factor"`
	// UtilityBlend is the utility multiplier folded into Score.
	UtilityBlend float64 `json:"utility_blend"`
	// AnchorBoost is the anchor-selection multiplier folded into Score
	// (1 when the query named no anchor of this instance).
	AnchorBoost float64 `json:"anchor_boost"`
}

// V1Segment is one typed query segment on the explain payload.
type V1Segment struct {
	Text  string `json:"text"`
	Kind  string `json:"kind"`
	Type  string `json:"type,omitempty"`
	Table string `json:"table,omitempty"`
}

// V1Affinity is one definition's type-identification score.
type V1Affinity struct {
	Definition string  `json:"definition"`
	Affinity   float64 `json:"affinity"`
}

// V1Explain is the /v1 explain payload: the query segmentation as the
// paper's typed template, plus the identified-type affinities,
// strongest first.
type V1Explain struct {
	Template   string       `json:"template"`
	Segments   []V1Segment  `json:"segments"`
	Affinities []V1Affinity `json:"affinities"`
}

// V1SearchResponse is the POST /v1/search reply in single mode, and the
// per-item success payload in batch mode.
type V1SearchResponse struct {
	Query   string     `json:"query"`
	K       int        `json:"k"`
	Offset  int        `json:"offset"`
	Total   int        `json:"total"`
	Cached  bool       `json:"cached"`
	TookUS  int64      `json:"took_us"`
	Results []V1Result `json:"results"`
	Explain *V1Explain `json:"explain,omitempty"`
}

// V1BatchItem is one batch entry: exactly one of Response and Error is
// set. A failing item never fails the batch.
type V1BatchItem struct {
	Response *V1SearchResponse `json:"response,omitempty"`
	Error    *V1Error          `json:"error,omitempty"`
}

// V1BatchResponse is the POST /v1/search reply in batch mode.
type V1BatchResponse struct {
	Items  []V1BatchItem `json:"items"`
	TookUS int64         `json:"took_us"`
}

// V1FeedbackRequest is the POST /v1/feedback body.
type V1FeedbackRequest struct {
	// InstanceID names the result the feedback is about.
	InstanceID string `json:"instance_id"`
	// Positive is true to reinforce the instance's qunit type, false to
	// penalize it.
	Positive bool `json:"positive"`
}

// V1FeedbackResponse is the POST /v1/feedback reply.
type V1FeedbackResponse struct {
	InstanceID string  `json:"instance_id"`
	Definition string  `json:"definition"`
	Utility    float64 `json:"utility"`
}

// V1Instance is the GET /v1/instances/{id} reply, and the success
// payload of POST /v1/instances.
type V1Instance struct {
	// ID is the instance's unique name (definition plus parameters).
	ID string `json:"id"`
	// Label is the instance's display label (its anchor value).
	Label string `json:"label"`
	// Definition names the qunit type this instance belongs to.
	Definition string `json:"definition"`
	// Utility is the instance's utility at read time.
	Utility float64 `json:"utility"`
	// Text is the instance's rendered flat text.
	Text string `json:"text"`
	// XML is the instance's rendered XML presentation.
	XML string `json:"xml,omitempty"`
}

// V1InstanceCreateRequest is the POST /v1/instances body: derive and
// index one new qunit instance of an existing definition, live — no
// rebuild, no restart.
type V1InstanceCreateRequest struct {
	// Definition names the qunit definition to instantiate.
	Definition string `json:"definition"`
	// Anchor is the anchor (parameter) value the instance is derived
	// for; empty for parameterless definitions.
	Anchor string `json:"anchor,omitempty"`
}

// V1InstanceRemoveResponse is the DELETE /v1/instances/{id} reply.
type V1InstanceRemoveResponse struct {
	// ID is the removed instance's ID.
	ID string `json:"id"`
	// Instances is the live instance count after the removal.
	Instances int `json:"instances"`
}

// maxBodyBytes bounds every /v1 request body.
const maxBodyBytes = 1 << 20

// writeV1Error writes a structured error envelope and counts it.
func (s *Server) writeV1Error(w http.ResponseWriter, status int, code, message string) {
	s.badRequests.Add(1)
	writeJSON(w, status, v1Envelope{Error: V1Error{Code: code, Message: message}})
}

// decodeV1 decodes a /v1 JSON body strictly (unknown fields rejected,
// trailing garbage rejected).
func decodeV1(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// v1ErrorFor maps an engine or cluster error to its HTTP status and
// stable code.
func v1ErrorFor(err error) (int, string) {
	var unknownDef *search.UnknownDefinitionError
	var remote *cluster.RemoteError
	var unavailable *cluster.UnavailableError
	switch {
	case errors.As(err, &remote):
		// A partition already classified this error; relay its code (and
		// HTTP status when the RPC carried one) unchanged, so a client
		// sees the same code it would have on a single node.
		if remote.Status != 0 {
			return remote.Status, remote.Code
		}
		return statusForCode(remote.Code), remote.Code
	case errors.As(err, &unavailable):
		return http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, search.ErrEmptyQuery):
		return http.StatusBadRequest, CodeInvalidArgument
	case errors.As(err, &unknownDef):
		return http.StatusBadRequest, CodeUnknownDefinition
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest, CodeInternal
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// statusForCode maps a stable code to its canonical HTTP status — the
// inverse the coordinator needs when an error arrives as a bare code
// (batch items carry no status).
func statusForCode(code string) int {
	switch code {
	case CodeInvalidArgument, CodeInvalidJSON, CodeUnknownDefinition, CodeUnsupportedProto:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeAlreadyExists:
		return http.StatusConflict
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeNotSupported:
		return http.StatusNotImplemented
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by the client; there is no standard-library constant.
const statusClientClosedRequest = 499

// toEngineRequest converts one wire request item to the engine form,
// applying the server's k defaulting and clamping. It rejects batch
// nesting and out-of-range values with stable codes.
func (s *Server) toEngineRequest(item V1SearchRequest) (search.Request, *V1Error) {
	if len(item.Queries) > 0 {
		return search.Request{}, &V1Error{Code: CodeInvalidArgument, Message: "batch items must not themselves contain queries"}
	}
	if strings.TrimSpace(item.Query) == "" {
		return search.Request{}, &V1Error{Code: CodeInvalidArgument, Message: "query must not be empty"}
	}
	k := s.cfg.DefaultK
	if item.K != nil {
		if *item.K < 1 {
			return search.Request{}, &V1Error{Code: CodeInvalidArgument, Message: fmt.Sprintf("invalid k %d: want a positive integer", *item.K)}
		}
		k = *item.K
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	if item.Offset < 0 {
		return search.Request{}, &V1Error{Code: CodeInvalidArgument, Message: fmt.Sprintf("invalid offset %d: want >= 0", item.Offset)}
	}
	req := search.Request{Query: item.Query, K: k, Offset: item.Offset, Explain: item.Explain}
	if item.Filter != nil {
		req.Filter = search.Filter{Definitions: item.Filter.Definitions, AnchorTypes: item.Filter.AnchorTypes}
	}
	return req, nil
}

// searchOne runs one engine request and shapes the /v1 reply.
func (s *Server) searchOne(r *http.Request, req search.Request) (*V1SearchResponse, *V1Error) {
	started := time.Now()
	s.queries.Add(1)
	entry, cached, err := s.runSearch(r.Context(), req)
	if err != nil {
		_, code := v1ErrorFor(err)
		return nil, &V1Error{Code: code, Message: err.Error()}
	}
	results := entry.results
	if results == nil {
		results = []V1Result{}
	}
	return &V1SearchResponse{
		Query:   req.Query,
		K:       req.K,
		Offset:  req.Offset,
		Total:   entry.total,
		Cached:  cached,
		TookUS:  time.Since(started).Microseconds(),
		Results: results,
		Explain: entry.explain,
	}, nil
}

// searchBatch answers the items of one /v1/search batch. Cache hits are
// served per item as usual; all misses then go to the engine in ONE
// BatchSearch call — a single engine-lock acquisition, so every item in
// the batch scores the same consistent index state, with duplicate
// items deduplicated inside the engine. The per-item wire shape is
// identical to single mode (batch items report the shared engine-pass
// latency as their took_us).
func (s *Server) searchBatch(r *http.Request, queries []V1SearchRequest) []V1BatchItem {
	started := time.Now()
	items := make([]V1BatchItem, len(queries))
	reqs := make([]search.Request, len(queries))
	keys := make([]string, len(queries))
	var missIdx []int
	var missReqs []search.Request
	for i, q := range queries {
		req, verr := s.toEngineRequest(q)
		if verr != nil {
			s.badRequests.Add(1)
			items[i] = V1BatchItem{Error: verr}
			continue
		}
		s.queries.Add(1)
		reqs[i] = req
		keys[i] = req.CacheKey()
		if entry, ok := s.cache.get(keys[i]); ok {
			s.cacheHits.Add(1)
			items[i] = V1BatchItem{Response: s.toV1Response(req, entry, true, started)}
			continue
		}
		s.cacheMisses.Add(1)
		missIdx = append(missIdx, i)
		missReqs = append(missReqs, req)
	}
	if len(missIdx) == 0 {
		return items
	}
	// Snapshot the purge epoch before the engine pass, mirroring
	// runSearch: results computed against pre-mutation state must not
	// repopulate a cache that was purged mid-flight.
	epoch := s.purgeEpoch.Load()
	outcomes, err := s.backend.batch(context.WithoutCancel(r.Context()), missReqs)
	stale := s.purgeEpoch.Load() != epoch
	if err != nil {
		// The whole backend pass failed (a partition was unreachable):
		// every miss item reports it, cache-hit items stand.
		_, code := v1ErrorFor(err)
		for _, i := range missIdx {
			s.badRequests.Add(1)
			items[i] = V1BatchItem{Error: &V1Error{Code: code, Message: err.Error()}}
		}
		return items
	}
	for j, i := range missIdx {
		if err := outcomes[j].err; err != nil {
			_, code := v1ErrorFor(err)
			s.badRequests.Add(1)
			items[i] = V1BatchItem{Error: &V1Error{Code: code, Message: err.Error()}}
			continue
		}
		entry := outcomes[j].entry
		if !stale {
			s.cache.put(keys[i], entry)
		}
		items[i] = V1BatchItem{Response: s.toV1Response(reqs[i], entry, false, started)}
	}
	return items
}

// toV1Response shapes one cached search outcome as the /v1 wire reply.
func (s *Server) toV1Response(req search.Request, entry *cachedSearch, cached bool, started time.Time) *V1SearchResponse {
	results := entry.results
	if results == nil {
		results = []V1Result{}
	}
	return &V1SearchResponse{
		Query:   req.Query,
		K:       req.K,
		Offset:  req.Offset,
		Total:   entry.total,
		Cached:  cached,
		TookUS:  time.Since(started).Microseconds(),
		Results: results,
		Explain: entry.explain,
	}
}

// handleV1Search serves POST /v1/search, single and batched.
func (s *Server) handleV1Search(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/search")
		return
	}
	var body V1SearchRequest
	if err := decodeV1(r, &body); err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if len(body.Queries) > 0 {
		// Strictness over silent loss: in batch mode the top-level
		// single-query fields have no meaning, so setting any of them is
		// an error rather than being ignored.
		if body.Query != "" || body.K != nil || body.Offset != 0 || body.Filter != nil || body.Explain {
			s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument,
				"a batch request sets only queries; put k, offset, filter, and explain on each item")
			return
		}
		if len(body.Queries) > s.cfg.MaxBatch {
			s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument,
				fmt.Sprintf("batch of %d exceeds the maximum of %d", len(body.Queries), s.cfg.MaxBatch))
			return
		}
		started := time.Now()
		items := s.searchBatch(r, body.Queries)
		writeJSON(w, http.StatusOK, V1BatchResponse{Items: items, TookUS: time.Since(started).Microseconds()})
		return
	}
	req, verr := s.toEngineRequest(body)
	if verr != nil {
		s.writeV1Error(w, http.StatusBadRequest, verr.Code, verr.Message)
		return
	}
	resp, verr := s.searchOne(r, req)
	if verr != nil {
		s.writeV1Error(w, statusForCode(verr.Code), verr.Code, verr.Message)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleV1Feedback serves POST /v1/feedback — the paper's relevance
// feedback loop over HTTP: a positive signal raises the result's qunit
// type utility, a negative one lowers it, and the result cache is
// purged because any ranking may change.
func (s *Server) handleV1Feedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/feedback")
		return
	}
	if !s.requireMutations(w) {
		return
	}
	var body V1FeedbackRequest
	if err := decodeV1(r, &body); err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if body.InstanceID == "" {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument, "instance_id must not be empty")
		return
	}
	inst, _, ok := s.engine.InstanceDetail(body.InstanceID)
	if !ok {
		s.writeV1Error(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no instance %q", body.InstanceID))
		return
	}
	util, err := s.ApplyFeedback(body.InstanceID, body.Positive)
	if err != nil {
		s.writeV1Error(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, V1FeedbackResponse{
		InstanceID: body.InstanceID,
		Definition: inst.Def.Name,
		Utility:    util,
	})
}

// V1CompactResponse is the POST /v1/compact reply.
type V1CompactResponse struct {
	// SlotsBefore and SlotsAfter are the index's global slot counts
	// around the pass.
	SlotsBefore int `json:"slots_before"`
	SlotsAfter  int `json:"slots_after"`
	// Live is the number of live instances carried over.
	Live int `json:"live"`
	// ReclaimedSlots is the number of tombstoned slots eliminated.
	ReclaimedSlots int `json:"reclaimed_slots"`
	// Compactions is the engine's total completed passes.
	Compactions int64 `json:"compactions"`
	// TookUS is the pass duration in microseconds.
	TookUS int64 `json:"took_us"`
}

// handleV1Compact serves POST /v1/compact: the admin trigger for one
// online compaction pass. Searches keep flowing while the pass runs
// (the rebuild happens off the engine lock); concurrent instance
// mutations block until it finishes. Safe to call at any time — on an
// already-dense index it is a no-op rebuild.
func (s *Server) handleV1Compact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/compact")
		return
	}
	if !s.requireMutations(w) {
		return
	}
	started := time.Now()
	res, err := s.Compact()
	if err != nil {
		s.writeV1Error(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, V1CompactResponse{
		SlotsBefore:    res.SlotsBefore,
		SlotsAfter:     res.SlotsAfter,
		Live:           res.Live,
		ReclaimedSlots: res.ReclaimedSlots,
		Compactions:    res.Compactions,
		TookUS:         time.Since(started).Microseconds(),
	})
}

// handleV1InstanceCreate serves POST /v1/instances: the live-update
// half of the snapshot story — a new entity's qunit is derived from the
// database and merged into the serving index under the engine lock,
// searchable by the next request.
func (s *Server) handleV1InstanceCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST /v1/instances")
		return
	}
	if !s.requireMutations(w) {
		return
	}
	var body V1InstanceCreateRequest
	if err := decodeV1(r, &body); err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidJSON, err.Error())
		return
	}
	if body.Definition == "" {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument, "definition must not be empty")
		return
	}
	inst, err := s.AddInstance(body.Definition, body.Anchor)
	if err != nil {
		var unknownDef *search.UnknownDefinitionError
		var exists *search.InstanceExistsError
		var badAnchor *search.InvalidAnchorError
		switch {
		case errors.As(err, &unknownDef):
			s.writeV1Error(w, http.StatusBadRequest, CodeUnknownDefinition, err.Error())
		case errors.As(err, &exists):
			s.writeV1Error(w, http.StatusConflict, CodeAlreadyExists, err.Error())
		case errors.As(err, &badAnchor):
			s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		default:
			// Anything else — instantiation or index failure — is an
			// engine-side fault, not a bad request.
			s.writeV1Error(w, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, V1Instance{
		ID:         inst.ID(),
		Label:      inst.Label(),
		Definition: inst.Def.Name,
		Utility:    inst.Utility,
		Text:       inst.Rendered.Text,
		XML:        inst.Rendered.XML,
	})
}

// handleV1Instance serves GET and DELETE /v1/instances/{id}.
func (s *Server) handleV1Instance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		s.writeV1Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use GET or DELETE /v1/instances/{id}")
		return
	}
	if !s.requireEngine(w) {
		return
	}
	if r.Method == http.MethodDelete && !s.requireMutations(w) {
		return
	}
	// Work on the escaped path so an instance ID containing a literal
	// "/" stays addressable as %2F (labels are arbitrary data).
	raw := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/instances/")
	if raw == "" || strings.Contains(raw, "/") {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument, "want /v1/instances/{id}")
		return
	}
	id, err := url.PathUnescape(raw)
	if err != nil {
		s.writeV1Error(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Sprintf("bad instance id encoding: %v", err))
		return
	}
	if r.Method == http.MethodDelete {
		if err := s.RemoveInstance(id); err != nil {
			var notFound *search.InstanceNotFoundError
			if errors.As(err, &notFound) {
				s.writeV1Error(w, http.StatusNotFound, CodeNotFound, err.Error())
			} else {
				s.writeV1Error(w, http.StatusInternalServerError, CodeInternal, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusOK, V1InstanceRemoveResponse{ID: id, Instances: s.engine.InstanceCount()})
		return
	}
	inst, util, ok := s.engine.InstanceDetail(id)
	if !ok {
		s.writeV1Error(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no instance %q", id))
		return
	}
	writeJSON(w, http.StatusOK, V1Instance{
		ID:         inst.ID(),
		Label:      inst.Label(),
		Definition: inst.Def.Name,
		Utility:    util,
		Text:       inst.Rendered.Text,
		XML:        inst.Rendered.XML,
	})
}

// requireMutations refuses the request with CodeNotSupported when this
// node's role does not accept mutations, and reports whether the
// handler may proceed.
func (s *Server) requireMutations(w http.ResponseWriter) bool {
	if s.acceptMutations {
		return true
	}
	s.writeV1Error(w, http.StatusNotImplemented, CodeNotSupported,
		"this node does not accept mutations; send them to the primary partition")
	return false
}

// requireEngine refuses the request with CodeNotSupported on nodes
// without a local engine (coordinators), and reports whether the
// handler may proceed.
func (s *Server) requireEngine(w http.ResponseWriter) bool {
	if s.engine != nil {
		return true
	}
	s.writeV1Error(w, http.StatusNotImplemented, CodeNotSupported,
		"a coordinator holds no instances; address an engine-backed node")
	return false
}
