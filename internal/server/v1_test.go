package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/search"
)

// newPrivateEngine builds a fresh, unshared engine for tests that
// mutate utilities via feedback.
func newPrivateEngine(t *testing.T) *search.Engine {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 6, Persons: 120, Movies: 80, CastPerMovie: 5})
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func decodeBody[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode %T: %v (body %s)", v, err, body)
	}
	return v
}

func wantV1Error(t *testing.T, rec *httptest.ResponseRecorder, body []byte, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, status, body)
	}
	env := decodeBody[v1Envelope](t, body)
	if env.Error.Code != code {
		t.Fatalf("code %q, want %q (body %s)", env.Error.Code, code, body)
	}
	if env.Error.Message == "" {
		t.Fatal("empty error message")
	}
}

func TestV1SearchSingle(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	resp := decodeBody[V1SearchResponse](t, body)
	if resp.Query != "star wars cast" || resp.K != 3 || resp.Offset != 0 || resp.Cached {
		t.Fatalf("envelope wrong: %+v", resp)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Total < len(resp.Results) {
		t.Fatalf("total %d < page %d", resp.Total, len(resp.Results))
	}
	top := resp.Results[0]
	if top.Definition != "movie-cast" || top.Label != "star wars" {
		t.Fatalf("top result = %+v", top)
	}
	// The /v1 result carries the full score breakdown, and the wire
	// components alone reconstruct the score.
	if top.Utility <= 0 || top.TypeFactor < 1 || top.UtilityBlend <= 0 || top.AnchorBoost < 1 {
		t.Fatalf("missing score components: %+v", top)
	}
	if top.AnchorBoost == 1 {
		t.Fatal("top result for an anchored query should be boosted")
	}
	if want := top.IRScore * top.TypeFactor * top.UtilityBlend * top.AnchorBoost; math.Abs(top.Score-want) > 1e-9 {
		t.Fatalf("score %v not reconstructible from wire components (%v)", top.Score, want)
	}
	if resp.Explain != nil {
		t.Fatal("explain payload without explain:true")
	}
	// Identical request again: served from cache.
	_, body2 := post(t, s, "/v1/search", `{"query":"star wars cast","k":3}`)
	if resp2 := decodeBody[V1SearchResponse](t, body2); !resp2.Cached {
		t.Fatal("second identical request not cached")
	}
}

func TestV1SearchExplain(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":2,"explain":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	resp := decodeBody[V1SearchResponse](t, body)
	ex := resp.Explain
	if ex == nil {
		t.Fatal("no explain payload")
	}
	if ex.Template != "[movie.title] cast" {
		t.Fatalf("template %q", ex.Template)
	}
	if len(ex.Segments) != 2 || ex.Segments[0].Kind != "entity" || ex.Segments[0].Type != "movie.title" {
		t.Fatalf("segments %+v", ex.Segments)
	}
	if len(ex.Affinities) == 0 || ex.Affinities[0].Affinity <= 0 {
		t.Fatalf("affinities %+v", ex.Affinities)
	}
	// Explain and non-explain requests must not share a cache entry.
	_, plainBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":2}`)
	plain := decodeBody[V1SearchResponse](t, plainBody)
	if plain.Cached {
		t.Fatal("non-explain request hit the explain cache entry")
	}
	if plain.Explain != nil {
		t.Fatal("explain leaked into non-explain response")
	}
}

func TestV1SearchOffsetPagination(t *testing.T) {
	s := newTestServer(t, Config{})
	_, fullBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":100}`)
	full := decodeBody[V1SearchResponse](t, fullBody)
	if full.Total < 3 {
		t.Fatalf("workload too thin: total %d", full.Total)
	}
	_, pageBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":2,"offset":2}`)
	page := decodeBody[V1SearchResponse](t, pageBody)
	if page.Offset != 2 || page.Total != full.Total {
		t.Fatalf("page envelope: %+v", page)
	}
	for i, r := range page.Results {
		if r.ID != full.Results[i+2].ID {
			t.Fatalf("page result %d = %s, want %s", i, r.ID, full.Results[i+2].ID)
		}
	}
	// Offset past the end: 200 with an empty page, not an error.
	rec, pastBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":5,"offset":100000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, pastBody)
	}
	past := decodeBody[V1SearchResponse](t, pastBody)
	if len(past.Results) != 0 || past.Total != full.Total {
		t.Fatalf("past-the-end page: %+v", past)
	}
	if !bytes.Contains(pastBody, []byte(`"results":[]`)) {
		t.Fatalf("empty page must marshal as [], got %s", pastBody)
	}
}

func TestV1SearchFilters(t *testing.T) {
	s := newTestServer(t, Config{})
	_, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":10,"filter":{"definitions":["movie-summary"]}}`)
	resp := decodeBody[V1SearchResponse](t, body)
	if len(resp.Results) == 0 {
		t.Fatal("filter produced nothing")
	}
	for _, r := range resp.Results {
		if r.Definition != "movie-summary" {
			t.Fatalf("filtered result from %q", r.Definition)
		}
	}
	// Unknown definition: stable error code, HTTP 400.
	rec, body := post(t, s, "/v1/search", `{"query":"star wars cast","filter":{"definitions":["nope"]}}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeUnknownDefinition)
	// Anchor-type filter restricts to person-anchored qunits.
	_, body = post(t, s, "/v1/search", `{"query":"star wars cast","k":10,"filter":{"anchor_types":["person.name"]}}`)
	resp = decodeBody[V1SearchResponse](t, body)
	for _, r := range resp.Results {
		if r.Definition != "person-profile" {
			t.Fatalf("anchor filter let through %q", r.Definition)
		}
	}
}

// TestV1CacheKeysDistinguishRequests: requests that differ only in
// offset or filter must never share a cache entry (the pre-/v1 cache
// keyed on (query,k) alone and would have collided).
func TestV1CacheKeysDistinguishRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	_, first := post(t, s, "/v1/search", `{"query":"star wars cast","k":5}`)
	a := decodeBody[V1SearchResponse](t, first)
	_, offsetBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":5,"offset":1}`)
	b := decodeBody[V1SearchResponse](t, offsetBody)
	if b.Cached {
		t.Fatal("offset request served from the offsetless cache entry")
	}
	if len(a.Results) > 1 && b.Results[0].ID != a.Results[1].ID {
		t.Fatalf("offset page wrong: %s vs %s", b.Results[0].ID, a.Results[1].ID)
	}
	_, filteredBody := post(t, s, "/v1/search", `{"query":"star wars cast","k":5,"filter":{"definitions":["movie-cast"]}}`)
	c := decodeBody[V1SearchResponse](t, filteredBody)
	if c.Cached {
		t.Fatal("filtered request served from the unfiltered cache entry")
	}
	for _, r := range c.Results {
		if r.Definition != "movie-cast" {
			t.Fatalf("cache collision: unfiltered result %q in filtered response", r.Definition)
		}
	}
	// The legacy route and /v1 share the core: an identical (query,k)
	// arriving via GET /search IS a cache hit for the /v1 entry.
	_, legacyBody := get(t, s, "/search?q=star+wars+cast&k=5")
	if legacy := decodeBody[SearchResponse](t, legacyBody); !legacy.Cached {
		t.Fatal("legacy alias did not share the /v1 cache entry")
	}
}

func TestV1SearchBatch(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, body := post(t, s, "/v1/search",
		`{"queries":[{"query":"star wars cast","k":2},{"query":"   "},{"query":"george clooney","k":1,"explain":true}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, body)
	}
	batch := decodeBody[V1BatchResponse](t, body)
	if len(batch.Items) != 3 {
		t.Fatalf("%d items", len(batch.Items))
	}
	// Item 0: success.
	if batch.Items[0].Error != nil || batch.Items[0].Response == nil {
		t.Fatalf("item 0: %+v", batch.Items[0])
	}
	if batch.Items[0].Response.Results[0].Definition != "movie-cast" {
		t.Fatalf("item 0 top: %+v", batch.Items[0].Response.Results[0])
	}
	// Item 1: the empty query fails alone, not the whole batch.
	if batch.Items[1].Response != nil || batch.Items[1].Error == nil {
		t.Fatalf("item 1: %+v", batch.Items[1])
	}
	if batch.Items[1].Error.Code != CodeInvalidArgument {
		t.Fatalf("item 1 code %q", batch.Items[1].Error.Code)
	}
	// Item 2: success with explain.
	if batch.Items[2].Response == nil || batch.Items[2].Response.Explain == nil {
		t.Fatalf("item 2: %+v", batch.Items[2])
	}

	// Mixing single-mode fields into a batch is rejected, never
	// silently ignored.
	for _, mixed := range []string{
		`{"query":"x","queries":[{"query":"y"}]}`,
		`{"explain":true,"queries":[{"query":"y"}]}`,
		`{"k":3,"queries":[{"query":"y"}]}`,
		`{"offset":2,"queries":[{"query":"y"}]}`,
		`{"filter":{"definitions":["movie-cast"]},"queries":[{"query":"y"}]}`,
	} {
		rec, body = post(t, s, "/v1/search", mixed)
		wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidArgument)
	}
	// Oversized batches are rejected with a stable code.
	small := New(sharedEngine(t), Config{MaxBatch: 2})
	rec, body = post(t, small, "/v1/search", `{"queries":[{"query":"a"},{"query":"b"},{"query":"c"}]}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidArgument)
	// Nested batches are a per-item error.
	_, body = post(t, s, "/v1/search", `{"queries":[{"query":"x","queries":[{"query":"y"}]}]}`)
	if err := decodeBody[V1BatchResponse](t, body).Items[0].Error; err == nil || err.Code != CodeInvalidArgument {
		t.Fatalf("nested batch item: %+v", err)
	}
}

func TestV1SearchBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		body string
		code string
	}{
		{`{`, CodeInvalidJSON},
		{`{"query":"x"} trailing`, CodeInvalidJSON},
		{`{"query":"x","unknown_field":1}`, CodeInvalidJSON},
		{`{"query":""}`, CodeInvalidArgument},
		{`{"query":"x","k":0}`, CodeInvalidArgument},
		{`{"query":"x","k":-1}`, CodeInvalidArgument},
		{`{"query":"x","offset":-1}`, CodeInvalidArgument},
		{`{"queries":[]}`, CodeInvalidArgument},
	}
	for _, c := range cases {
		rec, body := post(t, s, "/v1/search", c.body)
		wantV1Error(t, rec, body, http.StatusBadRequest, c.code)
	}
	// Wrong method: structured 405.
	rec, body := get(t, s, "/v1/search")
	wantV1Error(t, rec, body, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// TestV1FeedbackEndToEnd drives the paper's feedback loop over HTTP:
// search, praise a result, observe its type's utility rise and the
// cache drop.
func TestV1FeedbackEndToEnd(t *testing.T) {
	// A private engine: feedback mutates utilities.
	u := newPrivateEngine(t)
	s := New(u, Config{})
	_, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":1}`)
	resp := decodeBody[V1SearchResponse](t, body)
	top := resp.Results[0]
	if s.cache.len() == 0 {
		t.Fatal("cache empty after search")
	}

	rec, fbBody := post(t, s, "/v1/feedback", `{"instance_id":`+mustJSON(top.ID)+`,"positive":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", rec.Code, fbBody)
	}
	fb := decodeBody[V1FeedbackResponse](t, fbBody)
	if fb.InstanceID != top.ID || fb.Definition != top.Definition {
		t.Fatalf("feedback reply %+v", fb)
	}
	if fb.Utility <= top.Utility {
		t.Fatalf("positive feedback did not raise utility: %v -> %v", top.Utility, fb.Utility)
	}
	if s.cache.len() != 0 {
		t.Fatal("cache not purged by feedback")
	}
	// Negative feedback lowers it again.
	_, fbBody = post(t, s, "/v1/feedback", `{"instance_id":`+mustJSON(top.ID)+`,"positive":false}`)
	if fb2 := decodeBody[V1FeedbackResponse](t, fbBody); fb2.Utility >= fb.Utility {
		t.Fatalf("negative feedback did not lower utility: %v -> %v", fb.Utility, fb2.Utility)
	}
	// The next search sees the updated utility.
	_, body = post(t, s, "/v1/search", `{"query":"star wars cast","k":1}`)
	if after := decodeBody[V1SearchResponse](t, body); after.Cached {
		t.Fatal("post-feedback search served stale cache")
	}

	// Errors: unknown instance is 404 with a stable code; bad shapes 400.
	rec, body = post(t, s, "/v1/feedback", `{"instance_id":"no-such-instance","positive":true}`)
	wantV1Error(t, rec, body, http.StatusNotFound, CodeNotFound)
	rec, body = post(t, s, "/v1/feedback", `{"positive":true}`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidArgument)
	rec, body = post(t, s, "/v1/feedback", `not json`)
	wantV1Error(t, rec, body, http.StatusBadRequest, CodeInvalidJSON)
	rec, body = get(t, s, "/v1/feedback")
	wantV1Error(t, rec, body, http.StatusMethodNotAllowed, CodeMethodNotAllowed)

	// The stats counter saw exactly the two applied signals.
	_, stBody := get(t, s, "/stats")
	if st := decodeBody[StatsResponse](t, stBody); st.Feedbacks != 2 {
		t.Fatalf("feedbacks = %d, want 2", st.Feedbacks)
	}
}

func TestV1InstanceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	_, body := post(t, s, "/v1/search", `{"query":"star wars cast","k":1}`)
	top := decodeBody[V1SearchResponse](t, body).Results[0]

	rec, instBody := get(t, s, "/v1/instances/"+url.PathEscape(top.ID))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, instBody)
	}
	inst := decodeBody[V1Instance](t, instBody)
	if inst.ID != top.ID || inst.Definition != top.Definition || inst.Label != top.Label {
		t.Fatalf("instance %+v vs result %+v", inst, top)
	}
	if inst.Text == "" || inst.XML == "" || inst.Utility <= 0 {
		t.Fatalf("degenerate instance payload: %+v", inst)
	}
	if !strings.HasPrefix(inst.Text, top.Snippet) {
		t.Fatalf("snippet %q is not a prefix of text %q", top.Snippet, inst.Text)
	}

	rec, instBody = get(t, s, "/v1/instances/no-such-instance")
	wantV1Error(t, rec, instBody, http.StatusNotFound, CodeNotFound)
	// A %2F in the id segment is part of the id, not a sub-path: it must
	// reach the lookup (404 for this synthetic id), not be rejected.
	rec, instBody = get(t, s, "/v1/instances/some%2Fslashed%2Fid")
	wantV1Error(t, rec, instBody, http.StatusNotFound, CodeNotFound)
	rec, instBody = get(t, s, "/v1/instances/")
	wantV1Error(t, rec, instBody, http.StatusBadRequest, CodeInvalidArgument)
	rec2 := httptest.NewRecorder()
	rec2Req := httptest.NewRequest(http.MethodPost, "/v1/instances/x", strings.NewReader("{}"))
	s.ServeHTTP(rec2, rec2Req)
	wantV1Error(t, rec2, rec2.Body.Bytes(), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// --- legacy wire compatibility --------------------------------------------

// The pre-redesign GET /search wire structs, frozen in this test. If
// the live handler's output ever decodes with unknown fields, loses a
// field, or reorders keys, one of the checks below fails.
type frozenLegacyResult struct {
	ID           string  `json:"id"`
	Label        string  `json:"label"`
	Definition   string  `json:"definition"`
	Score        float64 `json:"score"`
	IRScore      float64 `json:"ir_score"`
	TypeAffinity float64 `json:"type_affinity"`
	Snippet      string  `json:"snippet,omitempty"`
}

type frozenLegacyResponse struct {
	Query   string               `json:"query"`
	K       int                  `json:"k"`
	Cached  bool                 `json:"cached"`
	TookUS  int64                `json:"took_us"`
	Results []frozenLegacyResult `json:"results"`
}

type frozenLegacyError struct {
	Error string `json:"error"`
}

// TestLegacySearchWireCompat: the legacy GET /search response must be
// byte-identical to what the pre-redesign server emitted — same fields,
// same order, nothing added.
func TestLegacySearchWireCompat(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{
		"/search?q=star+wars+cast&k=3",
		"/search?q=george+clooney",
		"/search?q=zzzz+qqqq+wwww&k=2", // no results
		"/search?q=%20",                // whitespace query: 200, empty results
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, rec.Code, body)
		}
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var frozen frozenLegacyResponse
		if err := dec.Decode(&frozen); err != nil {
			t.Fatalf("%s: legacy shape violated: %v (body %s)", path, err, body)
		}
		reencoded, err := json.Marshal(frozen)
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.TrimSpace(body); !bytes.Equal(got, reencoded) {
			t.Fatalf("%s: wire bytes diverge from the frozen legacy format:\n got %s\nwant %s", path, got, reencoded)
		}
		if !bytes.Contains(body, []byte(`"results":[`)) {
			t.Fatalf("%s: results not an array: %s", path, body)
		}
	}
	// Legacy errors keep the flat {"error": "..."} shape, not the /v1
	// envelope.
	rec, body := get(t, s, "/search")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var e frozenLegacyError
	if err := dec.Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("legacy error shape violated: %v (body %s)", err, body)
	}
}

// mustJSON marshals a string as a JSON literal for test bodies.
func mustJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}
