package snapshot

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"qunits/internal/search"
)

// TestCompactThenSaveEqualsSaveLoadCompactSave is the
// compaction↔snapshot equivalence: compacting an engine and saving it
// must produce the same bytes as saving it uncompacted, loading that
// snapshot, compacting the loaded engine, and saving again. Compaction
// commutes with the snapshot round trip because a v2 load is slot-exact
// and a compaction pass is a pure function of the index state.
func TestCompactThenSaveEqualsSaveLoadCompactSave(t *testing.T) {
	e := mutatedEngine(t)
	if st := e.IndexStats(); st.Tombstones == 0 {
		t.Fatal("fixture engine has no tombstones to reclaim")
	}
	var uncompacted bytes.Buffer
	if err := SaveEngine(&uncompacted, e); err != nil {
		t.Fatal(err)
	}

	// Path B: save → load → compact → save.
	loaded, err := LoadEngine(bytes.NewReader(uncompacted.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := loaded.Compact()
	if err != nil {
		t.Fatal(err)
	}
	var pathB bytes.Buffer
	if err := SaveEngine(&pathB, loaded); err != nil {
		t.Fatal(err)
	}

	// Path A: compact → save.
	resA, err := e.Compact()
	if err != nil {
		t.Fatal(err)
	}
	var pathA bytes.Buffer
	if err := SaveEngine(&pathA, e); err != nil {
		t.Fatal(err)
	}

	if resA != resB {
		t.Fatalf("compaction results diverged: %+v vs %+v", resA, resB)
	}
	if resA.ReclaimedSlots == 0 {
		t.Fatal("compaction reclaimed nothing")
	}
	if !bytes.Equal(pathA.Bytes(), pathB.Bytes()) {
		t.Fatalf("compact→save (%d bytes) != save→load→compact→save (%d bytes)", pathA.Len(), pathB.Len())
	}
	// (No size assertion: slot remapping redistributes documents across
	// shards, so per-shard list header overhead can offset the few
	// bytes this fixture's single tombstone frees. The dense-on-disk
	// property is pinned structurally by TestCompactedSnapshotIsSlotDense.)
	if bytes.Equal(pathA.Bytes(), uncompacted.Bytes()) {
		t.Fatal("compacted snapshot is identical to the tombstoned one — compaction changed nothing on disk")
	}
}

// TestCompactedSnapshotIsSlotDense decodes a compacted engine's
// snapshot and checks the v2 slot section directly: no tombstones are
// persisted — slot ids are exactly 0..N-1 — and every posting list's
// stored postings are all live.
func TestCompactedSnapshotIsSlotDense(t *testing.T) {
	e := mutatedEngine(t)
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	st, err := decodeState(bytes.NewReader(buf.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.Slots != len(st.Docs) {
		t.Fatalf("compacted snapshot has %d slots for %d docs", st.Slots, len(st.Docs))
	}
	for i, d := range st.Docs {
		if d.Slot != i {
			t.Fatalf("doc %d persisted in slot %d; compacted snapshots are dense", i, d.Slot)
		}
	}
	for si, lists := range st.Postings {
		for _, tp := range lists {
			total := 0
			for _, b := range tp.Blocks {
				total += b.N
			}
			if total != tp.Live {
				t.Fatalf("shard %d term %q: %d stored postings, %d live — tombstones persisted after compaction", si, tp.Term, total, tp.Live)
			}
		}
	}
}

// TestCompactedRoundTripFixedPointAndParity: a compacted engine's
// snapshot round-trips to a byte fixed point and the loaded engine
// answers the query corpus bitwise identically — including against the
// original engine from BEFORE the compaction.
func TestCompactedRoundTripFixedPointAndParity(t *testing.T) {
	original := mutatedEngine(t)
	reference := make([]*search.Response, 0, len(queryCorpus))
	for _, req := range queryCorpus {
		resp, err := original.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		reference = append(reference, resp)
	}
	if _, err := original.Compact(); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := SaveEngine(&first, original); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(first.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := SaveEngine(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("compacted snapshot is not a save→load→save fixed point")
	}
	for i, req := range queryCorpus {
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "compacted round trip "+req.Query, reference[i], got)
	}
}

// TestV1UpgradeLoadThenCompact: a v1 snapshot restores by compacting
// replay, so the loaded engine is already dense — a compaction pass
// must be a no-op that reclaims nothing — and the post-compaction
// engine must still save→load→save to a byte fixed point at v2.
func TestV1UpgradeLoadThenCompact(t *testing.T) {
	e := mutatedEngine(t)
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := encodeStateAt(&v1, e.Catalog().DB(), st, 1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(v1.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if ix := loaded.IndexStats(); ix.Tombstones != 0 {
		t.Fatalf("v1 upgrade load left %d tombstones; the replay path compacts", ix.Tombstones)
	}
	res, err := loaded.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedSlots != 0 {
		t.Fatalf("compacting a v1-upgraded engine reclaimed %d slots, want 0", res.ReclaimedSlots)
	}
	var first, second bytes.Buffer
	if err := SaveEngine(&first, loaded); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadEngine(bytes.NewReader(first.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEngine(&second, reloaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("v1-upgrade → compact → save is not a v2 fixed point")
	}
	for _, req := range queryCorpus {
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reloaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "v1-upgrade+compact "+req.Query, want, got)
	}
}

// TestCompactedSnapshotCorruption: the typed truncation/corruption
// errors keep firing on the compacted (dense) layout.
func TestCompactedSnapshotCorruption(t *testing.T) {
	e := mutatedEngine(t)
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for _, cut := range []int{3, 40, len(snap) / 2, len(snap) - 20, len(snap) - 2} {
		if _, err := LoadEngine(bytes.NewReader(snap[:cut]), fixtureDB(t)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(snap), err)
		}
	}
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-12] ^= 0x55 // inside the final block's TF array
	if _, err := LoadEngine(bytes.NewReader(flipped), fixtureDB(t)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: err = %v, want ErrChecksum", err)
	}
	future := append([]byte(nil), snap...)
	binary.LittleEndian.PutUint16(future[4:6], FormatVersion+1)
	var fv *FutureVersionError
	if _, err := LoadEngine(bytes.NewReader(future), fixtureDB(t)); !errors.As(err, &fv) {
		t.Fatalf("future version: err = %v, want FutureVersionError", err)
	}
}
