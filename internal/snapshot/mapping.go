package snapshot

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Mapping owns a read-only memory mapping of a snapshot file. An engine
// restored from it serves posting blocks directly out of the mapped
// bytes, so the Mapping must stay mapped as long as the engine — or any
// search running against it — is reachable. Restore wires that up
// automatically: the engine's index retains the Mapping (via
// EngineState.PostingsOwner), so the GC cannot finalize it under a
// live search, and once the last engine epoch referencing it is
// collected (e.g. after Compact rebuilds heap-backed shards) the
// finalizer unmaps it without any explicit bookkeeping.
//
// Close may be called explicitly only when the caller knows no engine
// serves from the mapping (load-failure cleanup, tests).
type Mapping struct {
	data   []byte
	closed atomic.Bool
}

// activeMappings counts live (not yet unmapped) mappings; test
// instrumentation for the lifetime rules above.
var activeMappings atomic.Int64

func newMapping(data []byte) *Mapping {
	m := &Mapping{data: data}
	activeMappings.Add(1)
	runtime.SetFinalizer(m, (*Mapping).Close)
	return m
}

// Close unmaps the file. It is idempotent; the GC finalizer calls it
// when the mapping becomes unreachable.
func (m *Mapping) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	activeMappings.Add(-1)
	data := m.data
	m.data = nil
	return munmapFile(data)
}

// ActiveMappings reports how many snapshot mappings are currently
// mapped. Tests use it to assert that dropping an engine (plus a GC
// cycle) releases its mapping.
func ActiveMappings() int64 { return activeMappings.Load() }

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian — the byte order the v3 blob stores TFs in. On the
// (rare) big-endian host the zero-copy float view is wrong, so loads
// fall back to decoding copies.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64View reinterprets an 8-byte-aligned little-endian byte slice as
// a []float64 without copying (len == cap, so any append reallocates
// off the underlying bytes). ok is false when the host byte order or
// the slice alignment makes the view invalid; callers then decode a
// copy instead.
func f64View(b []byte) ([]float64, bool) {
	if len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// f64Bytes is the inverse view: the raw bytes backing a []float64.
// Used to give the copy-mode blob buffer guaranteed 8-byte alignment.
func f64Bytes(words []float64) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
}
