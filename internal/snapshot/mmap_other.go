//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform can serve snapshots via
// memory mapping; without it every load takes the streaming copy path.
const mmapSupported = false

func mmapFile(f *os.File) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(data []byte) error { return nil }
