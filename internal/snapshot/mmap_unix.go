//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can serve snapshots via
// memory mapping. The non-unix build constrains loads to the streaming
// copy path.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared, so the posting
// blob lives in page cache — one physical copy no matter how many
// co-located processes map the same snapshot.
func mmapFile(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("snapshot: cannot map %d-byte file", size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("snapshot: file size %d overflows int", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error { return syscall.Munmap(data) }
