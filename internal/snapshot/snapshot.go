// Package snapshot persists a built search engine to a versioned binary
// format and streams it back — the offline/online split the qunits
// paper assumes: qunit derivation and indexing are "an offline process,
// much like the index generation phase in IR systems", and serving
// should not repeat them on every process start.
//
// # Format
//
// A snapshot is one self-describing binary blob:
//
//	magic    4 bytes  "QSNP"
//	version  uint16   little-endian format version (currently 3)
//	payload  -        version-defined body (see below)
//	checksum uint32   little-endian CRC-32C over magic+version+payload
//	                  (version 3 excludes the posting blob — see below)
//
// The version-1 payload, in order: the scorer (kind byte + parameters),
// the five scoring option weights, the synonym table, the shard count,
// a database fingerprint (name, table count, row count, CRC-64 content
// hash over every cell), the catalog in
// the core codec's JSON wire format (definitions with learned
// utilities), every indexed instance in index-insertion order (rendered
// presentation, provenance, utility, analyzed terms), and the exact
// running total document length. Integers are unsigned varints, floats
// are IEEE-754 bits little-endian, strings are length-prefixed UTF-8.
//
// The version-2 payload is the version-1 payload followed by: the
// exhaustive-scorer debugging flag (one byte), the index's global slot
// count and each document's slot id (so removal tombstones — and with
// them shard assignment — are reproduced exactly), and the compressed
// posting lists of every shard: per sorted term, the list's live count
// and stale-safe metadata aggregates, then each block's header
// (first/last doc, posting count, max TF, min length), its
// delta/varint-encoded doc-id bytes verbatim, and its TF array. A v2
// load installs these lists wholesale instead of re-deriving postings
// from the documents, reproducing the serving index — block boundaries,
// tombstones, and block-max metadata included — bit for bit.
//
// The version-3 layout restructures the file so the posting payload is
// directly servable via mmap:
//
//	magic     4 bytes   "QSNP"
//	version   uint16    3, little-endian
//	blobLen   uint64    posting-blob byte length, little-endian
//	pad       2 bytes   zero (the blob starts at offset 16, 8-aligned)
//	blob      blobLen   posting block payloads (below)
//	metadata  -         blobCRC64, then the v1 payload, then the v2
//	                    extras with per-block blob offsets instead of
//	                    inline payloads
//	checksum  uint32    CRC-32C over magic..pad + metadata (NOT the blob)
//
// The blob holds, for every posting block in shard/term/block order:
// padding up to the next 8-byte boundary, the block's TFs as
// contiguous little-endian IEEE-754 float64s, then its delta/varint
// doc-id gap bytes verbatim. Block metadata (in the hashed metadata
// section) stores each block's TF-region offset and gap-byte length;
// the doc-gap region is implied at tfsOff + 8·N. Because every TF
// region is 8-aligned, a loader may mmap the file and hand the ir
// layer zero-copy float64 views of the mapped bytes; a streaming
// loader instead copies the blob to one aligned heap buffer and
// builds the same views over that. blobCRC64 is a CRC-64/ECMA over
// the blob, verified on copy loads; mapped loads skip it (hashing the
// whole blob would defeat O(1) boot) and trust the kernel to page in
// exactly what was written.
//
// # Compatibility rules
//
//   - The magic never changes; anything else is ErrBadMagic.
//   - A reader accepts exactly the versions it knows — currently 1, 2
//     and 3. A higher version is *FutureVersionError (upgrade the
//     binary, not the snapshot); a version no longer supported fails
//     the same way version 0 does. A v1 snapshot restores by replaying
//     its documents (live documents compact into fresh slots; rankings
//     are unaffected).
//   - Any payload change bumps the version. There are no optional or
//     skippable fields inside a version.
//   - The checksum is verified before any decoded state is used.
//
// # Guarantees
//
// LoadEngine over the same database reproduces the dumped engine
// exactly: posting lists, shard layout, collection statistics, learned
// utilities — so Search returns bitwise-identical scores and explain
// payloads (parity-enforced by tests here and in internal/server). The
// database itself is not part of the snapshot; a fingerprint mismatch
// is *DatabaseMismatchError.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"hash/crc64"
	"io"
	"math"
	"os"
	"sort"

	"qunits/internal/ir"
	"qunits/internal/relational"
	"qunits/internal/search"
)

// FormatVersion is the snapshot format version this package writes.
const FormatVersion = 3

// minReadVersion is the oldest format version this package still loads.
const minReadVersion = 1

// magic identifies a qunits engine snapshot.
var magic = [4]byte{'Q', 'S', 'N', 'P'}

// crcTable is the CRC-32C (Castagnoli) polynomial table the trailing
// checksum uses.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrBadMagic reports a stream that is not a qunits engine snapshot.
	ErrBadMagic = errors.New("snapshot: bad magic (not a qunits engine snapshot)")
	// ErrTruncated reports a snapshot that ends mid-structure.
	ErrTruncated = errors.New("snapshot: truncated snapshot")
	// ErrChecksum reports a snapshot whose trailing CRC-32C does not
	// match its content.
	ErrChecksum = errors.New("snapshot: checksum mismatch (corrupt snapshot)")
	// ErrCorrupt reports a snapshot whose structure decodes to
	// impossible values (an unknown scorer kind, an oversized count).
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
)

// FutureVersionError reports a snapshot written by a newer format
// version than this binary understands.
type FutureVersionError struct {
	// Version is the snapshot's format version.
	Version uint16
}

// Error implements error.
func (e *FutureVersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d is newer than the supported %d", e.Version, FormatVersion)
}

// DatabaseMismatchError reports a snapshot loaded against a database
// other than the one it was saved over.
type DatabaseMismatchError struct {
	// Want describes the database the snapshot was saved over.
	Want string
	// Got describes the database the load was attempted against.
	Got string
}

// Error implements error.
func (e *DatabaseMismatchError) Error() string {
	return fmt.Sprintf("snapshot: database mismatch: snapshot is over %s, load attempted against %s", e.Want, e.Got)
}

// UnsupportedScorerError reports a save of an engine whose scorer the
// format cannot serialize (only the stock ir.BM25 and ir.TFIDF are
// parameterizable on the wire).
type UnsupportedScorerError struct {
	// Name is the scorer's self-reported name.
	Name string
}

// Error implements error.
func (e *UnsupportedScorerError) Error() string {
	return fmt.Sprintf("snapshot: cannot serialize custom scorer %q (only bm25 and tfidf)", e.Name)
}

// Scorer kind tags on the wire.
const (
	scorerBM25  = 1
	scorerTFIDF = 2
)

// Decode-time sanity caps: a corrupt length prefix must fail cleanly,
// not attempt a multi-gigabyte allocation before the checksum check.
// Counts additionally bound only the *initial* slice capacity
// (maxPrealloc); the slices grow by append, so a corrupt count fails
// with ErrTruncated as soon as the stream runs dry rather than
// allocating count×elemsize up front.
const (
	maxStringLen = 1 << 28 // 256 MiB per string
	maxCount     = 1 << 26 // 64M elements per collection
	maxPrealloc  = 1 << 12 // elements preallocated per collection
)

// SaveEngine writes the engine's full state as one snapshot blob. The
// engine keeps serving while the state is captured (a read-lock
// snapshot); the write itself happens outside the engine lock.
func SaveEngine(w io.Writer, e *search.Engine) error {
	st, err := e.DumpState()
	if err != nil {
		return err
	}
	return encodeState(w, e.Catalog().DB(), st)
}

// SaveState writes an already-captured engine state as one snapshot
// blob over the database it was dumped from. It is SaveEngine with the
// capture step lifted out, for callers that must pair the state with
// other data captured in the same critical section — the cluster
// layer's follower bootstrap records the mutation-log position
// atomically with the state via search.Engine.DumpStateWith and then
// encodes here.
func SaveState(w io.Writer, db *relational.Database, st *search.EngineState) error {
	return encodeState(w, db, st)
}

// LoadEngine reads a snapshot and rebuilds a serving-ready engine over
// the given database — which must be the database the snapshot was
// saved over (same schema and rows; the fingerprint check catches
// drift). On success the engine answers searches bitwise-identically to
// the engine that was saved.
func LoadEngine(r io.Reader, db *relational.Database) (*search.Engine, error) {
	st, err := decodeState(r, db)
	if err != nil {
		return nil, err
	}
	return search.RestoreEngine(db, st)
}

// errNotMappable marks a snapshot file the mapped loader cannot serve
// in place (pre-v3 version, or a host without usable mmap semantics);
// LoadEngineFile falls back to the streaming path, which produces the
// canonical error for genuinely bad files.
var errNotMappable = errors.New("snapshot: not mappable")

// LoadEngineFile loads a snapshot from a file, serving posting blocks
// directly out of a read-only memory mapping when the platform and the
// snapshot version (3+) allow it, and falling back to the streaming
// LoadEngine otherwise. mapped reports which path was taken.
//
// A mapped load is O(metadata), not O(corpus): posting payloads are
// never touched at load time, only paged in on first search. The
// restored engine anchors the mapping for exactly as long as any
// search can reach the mapped bytes (see Mapping); callers need no
// explicit unmap.
func LoadEngineFile(path string, db *relational.Database) (eng *search.Engine, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	if mmapSupported && hostLittleEndian {
		eng, err := loadMapped(f, db)
		if err == nil {
			return eng, true, nil
		}
		if !errors.Is(err, errNotMappable) {
			return nil, false, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, false, err
		}
	}
	eng, err = LoadEngine(f, db)
	return eng, false, err
}

// loadMapped maps the file and decodes it in place. The stream handed
// to the decoder splices the blob region out (header + metadata only),
// so the checksum machinery hashes exactly what the encoder hashed
// while the posting payloads stay untouched.
func loadMapped(f *os.File, db *relational.Database) (*search.Engine, error) {
	data, err := mmapFile(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errNotMappable, err)
	}
	m := newMapping(data)
	eng, err := restoreMapped(m, db)
	if err != nil {
		m.Close()
		return nil, err
	}
	return eng, nil
}

func restoreMapped(m *Mapping, db *relational.Database) (*search.Engine, error) {
	data := m.data
	if len(data) < 16 || [4]byte(data[:4]) != magic {
		// Too short or not a snapshot: let the streaming path produce
		// the canonical ErrTruncated/ErrBadMagic.
		return nil, errNotMappable
	}
	if binary.LittleEndian.Uint16(data[4:6]) < 3 {
		return nil, errNotMappable
	}
	blobLen := binary.LittleEndian.Uint64(data[6:14])
	if blobLen > uint64(len(data)-16) {
		return nil, fmt.Errorf("%w: %d-byte blob in %d-byte file", ErrTruncated, blobLen, len(data))
	}
	blobEnd := 16 + int(blobLen)
	stream := io.MultiReader(bytes.NewReader(data[:16]), bytes.NewReader(data[blobEnd:]))
	st, err := decodeStateCfg(stream, db, &decodeCfg{
		mappedBlob: data[16:blobEnd:blobEnd],
		limit:      int64(len(data) - int(blobLen)),
	})
	if err != nil {
		return nil, err
	}
	st.TrustedPostings = true
	st.PostingsOwner = m
	return search.RestoreEngine(db, st)
}

// fingerprint summarizes a database for the compatibility check: its
// name, shape counts, and a CRC-64 over every cell value in sorted
// table order — so two universes that merely coincide in name and row
// counts (easy with randomized generators) cannot be confused. Cost is
// one linear pass over the cells, negligible next to the load itself.
func fingerprint(db *relational.Database) (name string, tables, rows int, content uint64) {
	h := crc64.New(contentTable)
	names := db.TableNames()
	sort.Strings(names)
	for _, tn := range names {
		h.Write([]byte(tn))
		h.Write([]byte{0})
		db.Table(tn).Scan(func(id int, row relational.Row) bool {
			for _, v := range row {
				h.Write([]byte(v.Render()))
				h.Write([]byte{0x1f})
			}
			h.Write([]byte{'\n'})
			return true
		})
	}
	return db.Name(), len(names), db.TotalRows(), h.Sum64()
}

// contentTable is the CRC-64 polynomial table the database content
// fingerprint uses.
var contentTable = crc64.MakeTable(crc64.ECMA)

// --- encoding ---------------------------------------------------------------

// encoder serializes primitives to w while folding every written byte
// into the running checksum. Errors are sticky.
type encoder struct {
	w   io.Writer
	crc hash.Hash32
	err error
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
		return
	}
	e.crc.Write(p)
}

// writeRaw writes bytes WITHOUT folding them into the trailing
// checksum — only the v3 posting blob goes through here, which carries
// its own CRC-64 so mapped loads can skip hashing it.
func (e *encoder) writeRaw(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
	}
}

func (e *encoder) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	e.write(buf[:binary.PutUvarint(buf[:], v)])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.write([]byte(s))
}

func (e *encoder) f64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	e.write(buf[:])
}

// stringMap writes a map in sorted key order, so identical state yields
// identical bytes (and an identical checksum) on every save.
func (e *encoder) stringMap(m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.str(m[k])
	}
}

func encodeState(w io.Writer, db *relational.Database, st *search.EngineState) error {
	return encodeStateAt(w, db, st, FormatVersion)
}

// encodeStateAt writes the state at a specific format version. Only the
// current version is written in production; older versions are kept
// writable so upgrade-compatibility tests can mint genuine old blobs.
// blobAlign is the alignment of every TF region in the v3 posting
// blob — what lets a mapped load view TFs as []float64 in place.
const blobAlign = 8

// blobLayout walks the posting lists in encode order and returns the
// blob's total length and each block's TF-region offset, both derived
// purely arithmetically (the write pass must then produce exactly
// these offsets).
func blobLayout(postings [][]ir.TermPostings) (blobLen uint64, tfsOffs []uint64) {
	var off uint64
	for _, lists := range postings {
		for _, tp := range lists {
			for _, b := range tp.Blocks {
				off = (off + blobAlign - 1) &^ (blobAlign - 1)
				tfsOffs = append(tfsOffs, off)
				off += uint64(len(b.TFs)) * 8
				off += uint64(len(b.Docs))
			}
		}
	}
	return off, tfsOffs
}

func encodeStateAt(w io.Writer, db *relational.Database, st *search.EngineState, version uint16) error {
	enc := &encoder{w: w, crc: crc32.New(crcTable)}
	enc.write(magic[:])
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], version)
	enc.write(ver[:])

	var tfsOffs []uint64
	if version >= 3 {
		// Header tail: blob length + alignment pad, then the blob itself
		// outside the trailing checksum, then its own CRC-64 opening the
		// hashed metadata section.
		blobLen, offs := blobLayout(st.Postings)
		tfsOffs = offs
		var hdr [10]byte
		binary.LittleEndian.PutUint64(hdr[:8], blobLen)
		enc.write(hdr[:])

		bh := crc64.New(contentTable)
		var off uint64
		var padBuf [blobAlign]byte
		var tfBuf [8]byte
		for _, lists := range st.Postings {
			for _, tp := range lists {
				for _, b := range tp.Blocks {
					if pad := (blobAlign - off%blobAlign) % blobAlign; pad > 0 {
						enc.writeRaw(padBuf[:pad])
						bh.Write(padBuf[:pad])
						off += pad
					}
					for _, tf := range b.TFs {
						binary.LittleEndian.PutUint64(tfBuf[:], math.Float64bits(tf))
						enc.writeRaw(tfBuf[:])
						bh.Write(tfBuf[:])
					}
					enc.writeRaw(b.Docs)
					bh.Write(b.Docs)
					off += uint64(len(b.TFs))*8 + uint64(len(b.Docs))
				}
			}
		}
		var bc [8]byte
		binary.LittleEndian.PutUint64(bc[:], bh.Sum64())
		enc.write(bc[:])
	}

	switch s := st.Options.Scorer.(type) {
	case ir.BM25:
		enc.write([]byte{scorerBM25})
		enc.f64(s.K1)
		enc.f64(s.B)
	case ir.TFIDF:
		enc.write([]byte{scorerTFIDF})
		enc.f64(0)
		enc.f64(0)
	default:
		return &UnsupportedScorerError{Name: st.Options.Scorer.Name()}
	}
	enc.f64(st.Options.LabelWeight)
	enc.f64(st.Options.KeywordWeight)
	enc.f64(st.Options.TypeBoost)
	enc.f64(st.Options.UtilityInfluence)
	enc.f64(st.Options.AnchorBoost)
	enc.stringMap(st.Options.Synonyms)
	enc.uvarint(uint64(st.Shards))

	name, tables, rows, content := fingerprint(db)
	enc.str(name)
	enc.uvarint(uint64(tables))
	enc.uvarint(uint64(rows))
	var ch [8]byte
	binary.LittleEndian.PutUint64(ch[:], content)
	enc.write(ch[:])

	enc.str(string(st.CatalogJSON))

	enc.uvarint(uint64(len(st.Docs)))
	for _, d := range st.Docs {
		enc.str(d.DefName)
		enc.stringMap(d.Params)
		enc.str(d.XML)
		enc.str(d.Text)
		enc.str(d.ContextText)
		enc.f64(d.Utility)
		enc.uvarint(uint64(len(d.Tuples)))
		for _, tr := range d.Tuples {
			enc.str(tr.Table)
			enc.uvarint(uint64(tr.Row))
		}
		enc.uvarint(uint64(len(d.Terms.Terms)))
		for _, tc := range d.Terms.Terms {
			enc.str(tc.Term)
			enc.f64(tc.TF)
		}
		enc.f64(d.Terms.Length)
	}
	enc.f64(st.IndexTotalLen)

	if version >= 2 {
		if st.Options.ExhaustiveScorer {
			enc.write([]byte{1})
		} else {
			enc.write([]byte{0})
		}
		enc.uvarint(uint64(st.Slots))
		for _, d := range st.Docs {
			enc.uvarint(uint64(d.Slot))
		}
		enc.uvarint(uint64(len(st.Postings)))
		blockIdx := 0
		for _, lists := range st.Postings {
			enc.uvarint(uint64(len(lists)))
			for _, tp := range lists {
				enc.str(tp.Term)
				enc.uvarint(uint64(tp.Live))
				enc.f64(tp.MaxTF)
				enc.f64(tp.MinTF)
				enc.f64(tp.MinLen)
				enc.uvarint(uint64(tp.LastDoc))
				enc.uvarint(uint64(len(tp.Blocks)))
				for _, b := range tp.Blocks {
					enc.uvarint(uint64(b.FirstDoc))
					enc.uvarint(uint64(b.LastDoc))
					enc.uvarint(uint64(b.N))
					if version >= 3 {
						// Payload lives in the blob; reference it. The
						// uvarints lead and the floats trail so a bit flip
						// in the file's final bytes lands in a float (a
						// checksum-caught value change), never in a length.
						enc.uvarint(tfsOffs[blockIdx])
						enc.uvarint(uint64(len(b.Docs)))
						blockIdx++
						enc.f64(b.MaxTF)
						enc.f64(b.MinLen)
						continue
					}
					enc.f64(b.MaxTF)
					enc.f64(b.MinLen)
					enc.uvarint(uint64(len(b.Docs)))
					enc.write(b.Docs)
					for _, tf := range b.TFs {
						enc.f64(tf)
					}
				}
			}
		}
	}

	if enc.err != nil {
		return fmt.Errorf("snapshot: writing: %w", enc.err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], enc.crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("snapshot: writing checksum: %w", err)
	}
	return nil
}

// --- decoding ---------------------------------------------------------------

// decoder reads primitives while folding every consumed byte into the
// running checksum. Errors are sticky; premature EOF maps to
// ErrTruncated.
type decoder struct {
	r   io.Reader // payload reads (hashed)
	raw *bufio.Reader
	crc hash.Hash32
	err error

	// limit is the number of bytes the stream can still yield, when
	// known (-1 otherwise). Length-measurable sources — bytes.Reader
	// and friends via Len(), plus the mapped loader, which knows the
	// file size — let the decoder refuse counts and preallocations
	// that provably exceed the remaining bytes, so a corrupt huge
	// count in a truncated file fails before allocating, not after.
	limit int64
}

func newDecoder(r io.Reader) *decoder {
	limit := int64(-1)
	if l, ok := r.(interface{ Len() int }); ok {
		limit = int64(l.Len())
	}
	raw := bufio.NewReader(r)
	crc := crc32.New(crcTable)
	// Tee after buffering: the checksum must cover exactly the bytes
	// the decoder consumes, never the bufio read-ahead.
	return &decoder{r: io.TeeReader(raw, crc), raw: raw, crc: crc, limit: limit}
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = ErrTruncated
		}
		d.err = err
	}
}

func (d *decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.fail(err)
		return
	}
	if d.limit >= 0 {
		d.limit -= int64(len(p))
	}
}

// prealloc caps an untrusted element count down to a safe initial
// slice capacity: at most maxPrealloc elements, and never more than
// the remaining stream bytes could possibly encode given a minimum
// on-wire element size.
func (d *decoder) prealloc(n, minElemSize int) int {
	if n > maxPrealloc {
		n = maxPrealloc
	}
	if d.limit >= 0 {
		if rem := d.limit / int64(minElemSize); int64(n) > rem {
			n = int(rem)
		}
	}
	return n
}

func (d *decoder) byte() byte {
	var b [1]byte
	d.read(b[:])
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(byteReaderFunc(d.byte))
	if err != nil && d.err == nil {
		d.fail(err)
	}
	return v
}

// byteReaderFunc adapts the decoder's single-byte read to io.ByteReader.
type byteReaderFunc func() byte

// ReadByte implements io.ByteReader.
func (f byteReaderFunc) ReadByte() (byte, error) { return f(), nil }

func (d *decoder) count(what string) int {
	n := d.uvarint()
	if n > maxCount {
		d.fail(fmt.Errorf("%w: %s count %d exceeds sanity cap", ErrCorrupt, what, n))
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: string length %d exceeds sanity cap", ErrCorrupt, n))
		return ""
	}
	if d.limit >= 0 && int64(n) > d.limit {
		d.fail(io.ErrUnexpectedEOF)
		return ""
	}
	buf := make([]byte, n)
	d.read(buf)
	return string(buf)
}

// bytes reads a length-prefixed byte blob, bounded like strings.
func (d *decoder) bytes(what string) []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: %s length %d exceeds sanity cap", ErrCorrupt, what, n))
		return nil
	}
	if d.limit >= 0 && int64(n) > d.limit {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	buf := make([]byte, n)
	d.read(buf)
	return buf
}

// blobCopy reads n bytes from the raw (unhashed) stream into one
// 8-byte-aligned heap buffer — the streaming stand-in for a mapping.
// The buffer grows geometrically as bytes actually arrive, so a
// corrupt huge n in a truncated file fails with ErrTruncated when the
// stream runs dry instead of attempting the full allocation up front.
func (d *decoder) blobCopy(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if d.limit >= 0 && int64(n) > d.limit {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	nWords := int((n + 7) / 8)
	words := make([]float64, min(nWords, 1<<13)) // start at ≤64 KiB
	got := 0
	for uint64(got) < n {
		if got == len(words)*8 {
			grown := make([]float64, min(nWords, 2*len(words)))
			copy(grown, words)
			words = grown
		}
		chunk := f64Bytes(words)[got:min(len(words)*8, int(n))]
		m, err := io.ReadFull(d.raw, chunk)
		got += m
		if d.limit >= 0 {
			d.limit -= int64(m)
		}
		if err != nil {
			d.fail(err)
			return nil
		}
	}
	if nWords == 0 {
		return nil
	}
	return f64Bytes(words)[:n]
}

func (d *decoder) f64() float64 {
	var buf [8]byte
	d.read(buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

func (d *decoder) stringMap() map[string]string {
	n := d.count("map")
	if n == 0 {
		return nil
	}
	m := make(map[string]string, d.prealloc(n, 2))
	for i := 0; i < n; i++ {
		k := d.str()
		m[k] = d.str()
	}
	return m
}

func decodeState(r io.Reader, db *relational.Database) (*search.EngineState, error) {
	return decodeStateCfg(r, db, nil)
}

// decodeCfg alters how decodeStateCfg obtains the v3 posting blob.
type decodeCfg struct {
	// mappedBlob, when non-nil, is the snapshot's blob region served
	// from a memory mapping; the stream then contains only header and
	// metadata (the mapped loader splices the blob out), the blob's
	// CRC-64 is NOT verified (the point of a mapped load is not to
	// touch all of it), and decoded posting blocks alias the mapping.
	mappedBlob []byte
	// limit is the stream's byte count when the caller knows it better
	// than the decoder can detect (mapped loads); 0 means autodetect.
	limit int64
}

func decodeStateCfg(r io.Reader, db *relational.Database, cfg *decodeCfg) (*search.EngineState, error) {
	dec := newDecoder(r)
	if cfg != nil && cfg.limit > 0 {
		dec.limit = cfg.limit
	}
	var m [4]byte
	dec.read(m[:])
	if dec.err != nil {
		return nil, dec.err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var ver [2]byte
	dec.read(ver[:])
	if dec.err != nil {
		return nil, dec.err
	}
	version := binary.LittleEndian.Uint16(ver[:])
	if version > FormatVersion {
		return nil, &FutureVersionError{Version: version}
	}
	if version < minReadVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, version)
	}

	// v3: the header ends with the blob length, then the (unhashed)
	// blob, then the hashed metadata opens with the blob's CRC-64.
	var blob []byte
	var blobLen uint64
	mapped := cfg != nil && cfg.mappedBlob != nil
	if version >= 3 {
		var hdr [10]byte
		dec.read(hdr[:])
		if dec.err != nil {
			return nil, dec.err
		}
		blobLen = binary.LittleEndian.Uint64(hdr[:8])
		if hdr[8] != 0 || hdr[9] != 0 {
			return nil, fmt.Errorf("%w: nonzero header padding", ErrCorrupt)
		}
		if mapped {
			if uint64(len(cfg.mappedBlob)) != blobLen {
				return nil, fmt.Errorf("%w: mapped blob is %d bytes, header says %d", ErrCorrupt, len(cfg.mappedBlob), blobLen)
			}
			blob = cfg.mappedBlob
		} else {
			blob = dec.blobCopy(blobLen)
		}
		var bc [8]byte
		dec.read(bc[:])
		if dec.err != nil {
			return nil, dec.err
		}
		if !mapped && crc64.Checksum(blob, contentTable) != binary.LittleEndian.Uint64(bc[:]) {
			return nil, fmt.Errorf("%w: posting blob CRC-64 mismatch", ErrChecksum)
		}
	}

	st := &search.EngineState{}
	kind := dec.byte()
	k1, b := dec.f64(), dec.f64()
	switch kind {
	case scorerBM25:
		st.Options.Scorer = ir.BM25{K1: k1, B: b}
	case scorerTFIDF:
		st.Options.Scorer = ir.TFIDF{}
	default:
		if dec.err == nil {
			return nil, fmt.Errorf("%w: unknown scorer kind %d", ErrCorrupt, kind)
		}
	}
	st.Options.LabelWeight = dec.f64()
	st.Options.KeywordWeight = dec.f64()
	st.Options.TypeBoost = dec.f64()
	st.Options.UtilityInfluence = dec.f64()
	st.Options.AnchorBoost = dec.f64()
	st.Options.Synonyms = dec.stringMap()
	st.Shards = int(dec.uvarint())

	wantName := dec.str()
	wantTables := int(dec.uvarint())
	wantRows := int(dec.uvarint())
	var wantContent [8]byte
	dec.read(wantContent[:])

	st.CatalogJSON = []byte(dec.str())

	nDocs := dec.count("doc")
	if dec.err == nil {
		st.Docs = make([]search.DocState, 0, dec.prealloc(nDocs, 16))
	}
	for i := 0; i < nDocs && dec.err == nil; i++ {
		doc := search.DocState{
			DefName: dec.str(),
			Params:  dec.stringMap(),
		}
		doc.XML = dec.str()
		doc.Text = dec.str()
		doc.ContextText = dec.str()
		doc.Utility = dec.f64()
		nTuples := dec.count("tuple")
		if dec.err == nil && nTuples > 0 {
			doc.Tuples = make([]relational.TupleRef, 0, dec.prealloc(nTuples, 2))
			for j := 0; j < nTuples && dec.err == nil; j++ {
				doc.Tuples = append(doc.Tuples, relational.TupleRef{Table: dec.str(), Row: int(dec.uvarint())})
			}
		}
		nTerms := dec.count("term")
		if dec.err == nil && nTerms > 0 {
			doc.Terms.Terms = make([]ir.TermCount, 0, dec.prealloc(nTerms, 9))
			for j := 0; j < nTerms && dec.err == nil; j++ {
				doc.Terms.Terms = append(doc.Terms.Terms, ir.TermCount{Term: dec.str(), TF: dec.f64()})
			}
		}
		doc.Terms.Length = dec.f64()
		st.Docs = append(st.Docs, doc)
	}
	st.IndexTotalLen = dec.f64()

	if version >= 2 {
		switch flag := dec.byte(); flag {
		case 0:
		case 1:
			st.Options.ExhaustiveScorer = true
		default:
			if dec.err == nil {
				return nil, fmt.Errorf("%w: bad exhaustive-scorer flag %d", ErrCorrupt, flag)
			}
		}
		st.Slots = dec.count("slot")
		prevSlot := -1
		for i := range st.Docs {
			slot := int(dec.uvarint())
			if dec.err == nil && (slot <= prevSlot || slot >= st.Slots) {
				return nil, fmt.Errorf("%w: doc %d slot %d out of order or range", ErrCorrupt, i, slot)
			}
			st.Docs[i].Slot = slot
			prevSlot = slot
		}
		nShardLists := dec.count("postings shard")
		if dec.err == nil && nShardLists != st.Shards {
			return nil, fmt.Errorf("%w: %d postings shards for %d index shards", ErrCorrupt, nShardLists, st.Shards)
		}
		if dec.err == nil {
			st.Postings = make([][]ir.TermPostings, 0, dec.prealloc(nShardLists, 1))
		}
		for si := 0; si < nShardLists && dec.err == nil; si++ {
			nTerms := dec.count("postings term")
			lists := make([]ir.TermPostings, 0, dec.prealloc(nTerms, 16))
			for ti := 0; ti < nTerms && dec.err == nil; ti++ {
				tp := ir.TermPostings{
					Term:    dec.str(),
					Live:    int(dec.uvarint()),
					MaxTF:   dec.f64(),
					MinTF:   dec.f64(),
					MinLen:  dec.f64(),
					LastDoc: int(dec.uvarint()),
				}
				nBlocks := dec.count("postings block")
				tp.Blocks = make([]ir.PostingBlock, 0, dec.prealloc(nBlocks, 16))
				for bi := 0; bi < nBlocks && dec.err == nil; bi++ {
					b := ir.PostingBlock{
						FirstDoc: int(dec.uvarint()),
						LastDoc:  int(dec.uvarint()),
						N:        int(dec.uvarint()),
					}
					if version >= 3 {
						tfsOff := dec.uvarint()
						docsLen := dec.uvarint()
						b.MaxTF = dec.f64()
						b.MinLen = dec.f64()
						if dec.err != nil {
							break
						}
						if b.N < 1 || b.N > maxCount {
							return nil, fmt.Errorf("%w: postings block of %d entries", ErrCorrupt, b.N)
						}
						// The block's payload is a [tfsOff, tfsOff+8N)
						// float region followed by docsLen gap bytes; both
						// must fall inside the blob, and the float region
						// must keep the encoder's 8-byte alignment.
						if tfsOff%blobAlign != 0 || tfsOff > blobLen || uint64(b.N)*8 > blobLen-tfsOff {
							return nil, fmt.Errorf("%w: postings TF region [%d, +%d×8) outside %d-byte blob", ErrCorrupt, tfsOff, b.N, blobLen)
						}
						docsOff := tfsOff + uint64(b.N)*8
						if docsLen > blobLen-docsOff {
							return nil, fmt.Errorf("%w: postings gap region [%d, +%d) outside %d-byte blob", ErrCorrupt, docsOff, docsLen, blobLen)
						}
						// Full slice expressions force len == cap so any
						// later append (index mutation) reallocates to the
						// heap instead of writing through the blob.
						tfBytes := blob[tfsOff:docsOff:docsOff]
						if tfs, ok := f64View(tfBytes); ok {
							b.TFs = tfs
						} else {
							// Big-endian host (or an unaligned copy buffer,
							// which f64Bytes-backed buffers never are):
							// decode a heap copy.
							b.TFs = make([]float64, b.N)
							for i := range b.TFs {
								b.TFs[i] = math.Float64frombits(binary.LittleEndian.Uint64(tfBytes[i*8:]))
							}
						}
						b.Docs = blob[docsOff : docsOff+docsLen : docsOff+docsLen]
						tp.Blocks = append(tp.Blocks, b)
						continue
					}
					b.MaxTF = dec.f64()
					b.MinLen = dec.f64()
					b.Docs = dec.bytes("postings gaps")
					if dec.err == nil && (b.N < 1 || b.N > maxCount) {
						return nil, fmt.Errorf("%w: postings block of %d entries", ErrCorrupt, b.N)
					}
					if dec.err == nil {
						b.TFs = make([]float64, 0, dec.prealloc(b.N, 8))
						for i := 0; i < b.N && dec.err == nil; i++ {
							b.TFs = append(b.TFs, dec.f64())
						}
					}
					tp.Blocks = append(tp.Blocks, b)
				}
				lists = append(lists, tp)
			}
			st.Postings = append(st.Postings, lists)
		}
	}

	if dec.err != nil {
		return nil, dec.err
	}

	// Verify the trailing checksum before trusting anything decoded.
	sum := dec.crc.Sum32()
	var stored [4]byte
	if _, err := io.ReadFull(dec.raw, stored[:]); err != nil {
		return nil, ErrTruncated
	}
	if binary.LittleEndian.Uint32(stored[:]) != sum {
		return nil, ErrChecksum
	}

	gotName, gotTables, gotRows, gotContent := fingerprint(db)
	wantHash := binary.LittleEndian.Uint64(wantContent[:])
	if gotName != wantName || gotTables != wantTables || gotRows != wantRows || gotContent != wantHash {
		return nil, &DatabaseMismatchError{
			Want: fmt.Sprintf("%q (%d tables, %d rows, content %016x)", wantName, wantTables, wantRows, wantHash),
			Got:  fmt.Sprintf("%q (%d tables, %d rows, content %016x)", gotName, gotTables, gotRows, gotContent),
		}
	}
	return st, nil
}
