package snapshot

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/ir"
	"qunits/internal/relational"
	"qunits/internal/search"
)

// fixtureDB regenerates the deterministic test universe — calling it
// twice models "the same database in a fresh process".
func fixtureDB(t *testing.T) *relational.Database {
	t.Helper()
	return imdb.MustGenerate(imdb.Config{Seed: 11, Persons: 150, Movies: 90, CastPerMovie: 5}).DB
}

func fixtureEngine(t *testing.T, db *relational.Database) *search.Engine {
	t.Helper()
	cat, err := derive.Expert{}.Derive(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{
		Synonyms: imdb.AttributeSynonyms(),
		Shards:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// queryCorpus exercises entity anchors, attributes, multi-type queries,
// paging, filters, and explain payloads.
var queryCorpus = []search.Request{
	{Query: "star wars cast", K: 10, Explain: true},
	{Query: "george clooney", K: 10, Explain: true},
	{Query: "george clooney movies", K: 5, Explain: true},
	{Query: "cast", K: 20, Offset: 5, Explain: true},
	{Query: "movie", K: 10},
	{Query: "star wars", K: 10, Filter: search.Filter{Definitions: []string{"movie-cast"}}, Explain: true},
	{Query: "tom hanks", K: 3, Explain: true},
}

// assertIdentical requires bitwise-equal responses: same instances in
// the same order, every score component equal to the last bit, and
// equal explain payloads.
func assertIdentical(t *testing.T, label string, want, got *search.Response) {
	t.Helper()
	if got.Total != want.Total {
		t.Fatalf("%s: Total %d, want %d", label, got.Total, want.Total)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.Instance.ID() != w.Instance.ID() {
			t.Fatalf("%s result %d: %q, want %q", label, i, g.Instance.ID(), w.Instance.ID())
		}
		if g.Score != w.Score || g.IRScore != w.IRScore || g.TypeAffinity != w.TypeAffinity ||
			g.TypeFactor != w.TypeFactor || g.Utility != w.Utility ||
			g.UtilityBlend != w.UtilityBlend || g.AnchorBoost != w.AnchorBoost {
			t.Fatalf("%s result %d (%s): score components differ:\n got %+v\nwant %+v",
				label, i, g.Instance.ID(), strip(g), strip(w))
		}
		if g.Instance.Rendered.Text != w.Instance.Rendered.Text ||
			g.Instance.Rendered.XML != w.Instance.Rendered.XML {
			t.Fatalf("%s result %d: rendered presentation differs", label, i)
		}
	}
	if (want.Explain == nil) != (got.Explain == nil) {
		t.Fatalf("%s: explain presence differs", label)
	}
	if want.Explain == nil {
		return
	}
	if got.Explain.Template != want.Explain.Template {
		t.Fatalf("%s: template %q, want %q", label, got.Explain.Template, want.Explain.Template)
	}
	if len(got.Explain.Segments) != len(want.Explain.Segments) ||
		len(got.Explain.Affinities) != len(want.Explain.Affinities) {
		t.Fatalf("%s: explain shape differs", label)
	}
	for i := range want.Explain.Segments {
		if got.Explain.Segments[i] != want.Explain.Segments[i] {
			t.Fatalf("%s segment %d: %+v, want %+v", label, i, got.Explain.Segments[i], want.Explain.Segments[i])
		}
	}
	for i := range want.Explain.Affinities {
		if got.Explain.Affinities[i] != want.Explain.Affinities[i] {
			t.Fatalf("%s affinity %d: %+v, want %+v", label, i, got.Explain.Affinities[i], want.Explain.Affinities[i])
		}
	}
}

// strip drops the instance pointer so failure messages stay readable.
func strip(r search.Result) search.Result {
	r.Instance = nil
	return r
}

// TestRoundTripParity is the core guarantee: build → save → load in a
// "fresh process" (regenerated database) → every corpus response is
// identical to the fresh build's, explain breakdowns included.
func TestRoundTripParity(t *testing.T) {
	db := fixtureDB(t)
	fresh := fixtureEngine(t, db)

	var buf bytes.Buffer
	if err := SaveEngine(&buf, fresh); err != nil {
		t.Fatalf("SaveEngine: %v", err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	if loaded.InstanceCount() != fresh.InstanceCount() {
		t.Fatalf("loaded InstanceCount %d, want %d", loaded.InstanceCount(), fresh.InstanceCount())
	}
	for _, req := range queryCorpus {
		want, err := fresh.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("fresh %q: %v", req.Query, err)
		}
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("loaded %q: %v", req.Query, err)
		}
		assertIdentical(t, req.Query, want, got)
	}
}

// TestRoundTripCarriesLearnedState: feedback-shifted utilities and
// live-added instances survive the snapshot.
func TestRoundTripCarriesLearnedState(t *testing.T) {
	db := fixtureDB(t)
	e := fixtureEngine(t, db)
	top := searchTopK(e, "star wars cast", 1)
	if len(top) == 0 {
		t.Fatal("fixture query found nothing")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.ApplyFeedback(top[0].Instance.ID(), true, search.Feedback{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.AddAnchorInstance("movie-cast", "zz snapshot only movie"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	corpus := append([]search.Request{{Query: "zz snapshot only movie", K: 5, Explain: true}}, queryCorpus...)
	for _, req := range corpus {
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, req.Query, want, got)
	}
	// And the loaded engine keeps learning and mutating.
	if _, err := loaded.ApplyFeedback(top[0].Instance.ID(), false, search.Feedback{}); err != nil {
		t.Fatalf("feedback on loaded engine: %v", err)
	}
	if err := loaded.RemoveInstance("movie-cast:zz snapshot only movie"); err != nil {
		t.Fatalf("remove on loaded engine: %v", err)
	}
}

// TestRoundTripAfterRemoval: tombstoned slots are compacted out of the
// snapshot and the exact collection statistics travel with it.
func TestRoundTripAfterRemoval(t *testing.T) {
	db := fixtureDB(t)
	e := fixtureEngine(t, db)
	top := searchTopK(e, "george clooney", 1)
	if len(top) == 0 {
		t.Fatal("fixture query found nothing")
	}
	if err := e.RemoveInstance(top[0].Instance.ID()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range queryCorpus {
		want, _ := e.Search(context.Background(), req)
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, req.Query, want, got)
	}
}

// TestRoundTripEmptiedEngine: an engine whose every instance was
// removed still snapshots and restores — the daemon must be able to
// boot from whatever state it saved.
func TestRoundTripEmptiedEngine(t *testing.T) {
	db := imdb.MustGenerate(imdb.Config{Seed: 12, Persons: 40, Movies: 20, CastPerMovie: 3}).DB
	cat, err := derive.Expert{}.Derive(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Docs {
		id := d.DefName
		if len(d.Params) > 0 {
			for _, v := range d.Params {
				id += ":" + v
			}
		}
		if err := e.RemoveInstance(id); err != nil {
			t.Fatalf("remove %q: %v", id, err)
		}
	}
	if e.InstanceCount() != 0 {
		t.Fatalf("engine not emptied: %d instances left", e.InstanceCount())
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatalf("SaveEngine of empty engine: %v", err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()),
		imdb.MustGenerate(imdb.Config{Seed: 12, Persons: 40, Movies: 20, CastPerMovie: 3}).DB)
	if err != nil {
		t.Fatalf("LoadEngine of empty snapshot: %v", err)
	}
	if loaded.InstanceCount() != 0 {
		t.Fatalf("loaded InstanceCount = %d, want 0", loaded.InstanceCount())
	}
	resp, err := loaded.Search(context.Background(), search.Request{Query: "anything", K: 5})
	if err != nil || resp.Total != 0 {
		t.Fatalf("search on empty loaded engine: resp=%+v err=%v", resp, err)
	}
	// And it accepts new instances again.
	if _, err := loaded.AddAnchorInstance("movie-cast", "rebirth movie"); err != nil {
		t.Fatalf("add after empty reload: %v", err)
	}
}

func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveEngine(&buf, fixtureEngine(t, fixtureDB(t))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadBadMagic(t *testing.T) {
	snap := snapshotBytes(t)
	snap[0] = 'X'
	if _, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	snap := snapshotBytes(t)
	for _, cut := range []int{3, 5, 40, len(snap) / 2, len(snap) - 2} {
		if _, err := LoadEngine(bytes.NewReader(snap[:cut]), fixtureDB(t)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	if _, err := LoadEngine(bytes.NewReader(nil), fixtureDB(t)); !errors.Is(err, ErrTruncated) {
		t.Fatal("empty stream did not report truncation")
	}
}

func TestLoadBadChecksum(t *testing.T) {
	snap := snapshotBytes(t)
	// Flip the last payload byte (part of the trailing float): the
	// structure still decodes, so only the checksum can catch it.
	snap[len(snap)-5] ^= 0xff
	if _, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: err = %v, want ErrChecksum", err)
	}
	snap = snapshotBytes(t)
	snap[len(snap)-1] ^= 0xff // corrupt the stored checksum itself
	if _, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum flip: err = %v, want ErrChecksum", err)
	}
}

func TestLoadFutureVersion(t *testing.T) {
	snap := snapshotBytes(t)
	snap[4], snap[5] = 0xff, 0x7f // version 32767
	_, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t))
	var fv *FutureVersionError
	if !errors.As(err, &fv) {
		t.Fatalf("err = %v, want FutureVersionError", err)
	}
	if fv.Version != 32767 {
		t.Fatalf("reported version %d", fv.Version)
	}
}

func TestLoadDatabaseMismatch(t *testing.T) {
	snap := snapshotBytes(t)
	other := imdb.MustGenerate(imdb.Config{Seed: 11, Persons: 40, Movies: 20, CastPerMovie: 3}).DB
	_, err := LoadEngine(bytes.NewReader(snap), other)
	var mm *DatabaseMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("err = %v, want DatabaseMismatchError", err)
	}
}

// customScorer is a scorer the wire format cannot carry.
type customScorer struct{ ir.BM25 }

func (customScorer) Name() string { return "custom" }

func TestSaveUnsupportedScorer(t *testing.T) {
	db := fixtureDB(t)
	cat, err := derive.Expert{}.Derive(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := search.NewEngine(cat, search.Options{Scorer: customScorer{}, Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var us *UnsupportedScorerError
	if err := SaveEngine(&buf, e); !errors.As(err, &us) {
		t.Fatalf("err = %v, want UnsupportedScorerError", err)
	}
}

// TestSaveDeterministic: equal state produces equal bytes — snapshots
// are diffable and content-addressable.
func TestSaveDeterministic(t *testing.T) {
	db := fixtureDB(t)
	e := fixtureEngine(t, db)
	var a, b bytes.Buffer
	if err := SaveEngine(&a, e); err != nil {
		t.Fatal(err)
	}
	if err := SaveEngine(&b, e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same engine differ")
	}
}

// searchTopK is the test-local replacement for the deleted SearchTopK
// shim: a positional top-k call that flattens errors to no results.
func searchTopK(e *search.Engine, query string, k int) []search.Result {
	resp, err := e.Search(context.Background(), search.Request{Query: query, K: k})
	if err != nil {
		return nil
	}
	return resp.Results
}
