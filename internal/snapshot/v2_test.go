package snapshot

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"qunits/internal/search"
)

// mutatedEngine builds the fixture engine and churns it — removals,
// re-adds, feedback — so its index carries tombstoned slots and stale
// block-max metadata, the state v2 must reproduce exactly.
func mutatedEngine(t *testing.T) *search.Engine {
	t.Helper()
	e := fixtureEngine(t, fixtureDB(t))
	top := searchTopK(e, "star wars cast", 3)
	if len(top) < 2 {
		t.Fatal("fixture query found too little")
	}
	removed := top[1].Instance.ID()
	if err := e.RemoveInstance(removed); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyFeedback(top[0].Instance.ID(), true, search.Feedback{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddAnchorInstance("movie-cast", "zz v2 snapshot movie"); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestV2SaveLoadSaveFixedPoint: a v2 load reproduces the dumped index
// slot-for-slot and posting-block-for-posting-block, so saving the
// loaded engine again must yield byte-identical snapshot output — a
// much stronger property than search parity alone.
func TestV2SaveLoadSaveFixedPoint(t *testing.T) {
	e := mutatedEngine(t)
	var first bytes.Buffer
	if err := SaveEngine(&first, e); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(first.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := SaveEngine(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("save→load→save changed the snapshot bytes (%d vs %d bytes)", first.Len(), second.Len())
	}
	for _, req := range queryCorpus {
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, req.Query, want, got)
	}
}

// TestV1UpgradeLoad mints a genuine version-1 blob (no slot or postings
// sections) with the kept-for-compat v1 encoder and loads it with the
// current binary: the compacted-slot restore path must still answer
// every query bitwise-identically to the dumped engine.
func TestV1UpgradeLoad(t *testing.T) {
	e := mutatedEngine(t)
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := encodeStateAt(&v1, e.Catalog().DB(), st, 1); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(v1.Bytes()[4:6]); got != 1 {
		t.Fatalf("minted blob has version %d, want 1", got)
	}
	loaded, err := LoadEngine(bytes.NewReader(v1.Bytes()), fixtureDB(t))
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	for _, req := range queryCorpus {
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "v1-upgrade "+req.Query, want, got)
	}
}

// TestV2ExhaustiveFlagPersisted: the debugging flag survives the
// round trip, so a snapshot of an oracle-mode engine restores into
// oracle mode.
func TestV2ExhaustiveFlagPersisted(t *testing.T) {
	db := fixtureDB(t)
	cat := fixtureEngine(t, db).Catalog()
	e, err := search.NewEngine(cat, search.Options{Shards: 2, ExhaustiveScorer: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	st, err := decodeState(bytes.NewReader(buf.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Options.ExhaustiveScorer {
		t.Fatal("ExhaustiveScorer flag lost in the round trip")
	}
}

// TestV2TruncatedPostingsSection: cutting the stream inside the new
// postings section must fail with ErrTruncated, never a partial load.
func TestV2TruncatedPostingsSection(t *testing.T) {
	e := mutatedEngine(t)
	var full bytes.Buffer
	if err := SaveEngine(&full, e); err != nil {
		t.Fatal(err)
	}
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	// Measure the v1 prefix: everything after it is the v2 section.
	var v1 bytes.Buffer
	if err := encodeStateAt(&v1, e.Catalog().DB(), st, 1); err != nil {
		t.Fatal(err)
	}
	sectionStart := v1.Len() - 4 // drop the v1 trailing checksum
	snap := full.Bytes()
	for _, cut := range []int{sectionStart + 1, sectionStart + 10, len(snap) - 20, len(snap) - 5} {
		_, err := LoadEngine(bytes.NewReader(snap[:cut]), fixtureDB(t))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(snap), err)
		}
	}
}

// TestV2CorruptPostingsSection: flipped bytes inside the postings
// section are caught — by the checksum for blind flips, and by the
// typed structural checks when the checksum is recomputed to match the
// corrupt content.
func TestV2CorruptPostingsSection(t *testing.T) {
	e := mutatedEngine(t)
	var full bytes.Buffer
	if err := SaveEngine(&full, e); err != nil {
		t.Fatal(err)
	}
	snap := append([]byte(nil), full.Bytes()...)
	snap[len(snap)-12] ^= 0x55 // inside the final block's TF array
	if _, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("blind flip: err = %v, want ErrChecksum", err)
	}

	// Structural corruption with a valid checksum: re-encode a state
	// whose postings section lies about its live counts.
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Postings) == 0 || len(st.Postings[0]) == 0 {
		t.Fatal("fixture has no postings to corrupt")
	}
	st.Postings[0][0].Live += 3
	var lied bytes.Buffer
	if err := encodeState(&lied, e.Catalog().DB(), st); err != nil {
		t.Fatal(err)
	}
	_, err = LoadEngine(bytes.NewReader(lied.Bytes()), fixtureDB(t))
	if err == nil || !strings.Contains(err.Error(), "live count") {
		t.Fatalf("lying live count: err = %v, want live-count validation failure", err)
	}

	// Out-of-order doc slots with a valid checksum: the decoder's typed
	// structural check must fire.
	st2, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Docs) < 2 {
		t.Fatal("fixture too small")
	}
	st2.Docs[0].Slot, st2.Docs[1].Slot = st2.Docs[1].Slot, st2.Docs[0].Slot
	var swapped bytes.Buffer
	if err := encodeState(&swapped, e.Catalog().DB(), st2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(bytes.NewReader(swapped.Bytes()), fixtureDB(t)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("slot disorder: err = %v, want ErrCorrupt", err)
	}
}
