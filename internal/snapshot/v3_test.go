package snapshot

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"qunits/internal/search"
)

// v3Blob parses the v3 prologue of a snapshot and returns the blob
// region's length, failing the test on a non-v3 stream.
func v3Blob(t *testing.T, snap []byte) uint64 {
	t.Helper()
	if len(snap) < 16 {
		t.Fatalf("snapshot too short: %d bytes", len(snap))
	}
	if v := binary.LittleEndian.Uint16(snap[4:6]); v != 3 {
		t.Fatalf("snapshot version %d, want 3", v)
	}
	return binary.LittleEndian.Uint64(snap[6:14])
}

// rehashV3 recomputes the trailing CRC-32C after a test mutated the
// hashed region (header + metadata; the blob is outside it), so
// structural decoder checks are exercised instead of the checksum.
func rehashV3(snap []byte) {
	blobLen := binary.LittleEndian.Uint64(snap[6:14])
	h := crc32.New(crcTable)
	h.Write(snap[:16])
	h.Write(snap[16+blobLen : uint64(len(snap))-4])
	binary.LittleEndian.PutUint32(snap[len(snap)-4:], h.Sum32())
}

// writeSnapFile saves the engine's snapshot into a temp file and
// returns its path alongside the bytes.
func writeSnapFile(t *testing.T, e *search.Engine) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// mappedFixture loads a snapshot file via the mapped path, skipping the
// test on platforms where the mapping cannot engage.
func mappedFixture(t *testing.T, path string) *search.Engine {
	t.Helper()
	eng, mapped, err := LoadEngineFile(path, fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if !mapped {
		t.Skip("mapped snapshot path unavailable on this platform")
	}
	return eng
}

// TestV3HeaderAndBlobCRC pins the v3 prologue: version 3, a blob region
// that fits the file, and a CRC-64 of exactly the blob bytes stored as
// the first metadata field.
func TestV3HeaderAndBlobCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveEngine(&buf, mutatedEngine(t)); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	blobLen := v3Blob(t, snap)
	if snap[14] != 0 || snap[15] != 0 {
		t.Fatalf("header pad bytes are %x %x, want zero", snap[14], snap[15])
	}
	if 16+blobLen+8+4 > uint64(len(snap)) {
		t.Fatalf("blob length %d does not fit the %d-byte snapshot", blobLen, len(snap))
	}
	blob := snap[16 : 16+blobLen]
	stored := binary.LittleEndian.Uint64(snap[16+blobLen : 24+blobLen])
	if got := crc64.Checksum(blob, contentTable); got != stored {
		t.Fatalf("stored blob CRC %x does not cover the blob region (computed %x)", stored, got)
	}
}

// TestUpgradeChainFixedPoint: loading a minted v1 or v2 snapshot and
// re-saving it lands on a v3 byte fixed point — saving the re-loaded
// engine changes nothing — and the upgraded engine answers the query
// corpus bitwise-identically to the engine the old snapshot dumped.
func TestUpgradeChainFixedPoint(t *testing.T) {
	e := mutatedEngine(t)
	st, err := e.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []uint16{1, 2} {
		var old bytes.Buffer
		if err := encodeStateAt(&old, e.Catalog().DB(), st, version); err != nil {
			t.Fatal(err)
		}
		upgraded, err := LoadEngine(bytes.NewReader(old.Bytes()), fixtureDB(t))
		if err != nil {
			t.Fatalf("loading v%d snapshot: %v", version, err)
		}
		var first bytes.Buffer
		if err := SaveEngine(&first, upgraded); err != nil {
			t.Fatal(err)
		}
		v3Blob(t, first.Bytes())
		reloaded, err := LoadEngine(bytes.NewReader(first.Bytes()), fixtureDB(t))
		if err != nil {
			t.Fatalf("re-loading upgraded v%d snapshot: %v", version, err)
		}
		var second bytes.Buffer
		if err := SaveEngine(&second, reloaded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("v%d upgrade has no byte fixed point (%d vs %d bytes)", version, first.Len(), second.Len())
		}
		for _, req := range queryCorpus {
			want, err := e.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := upgraded.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, "v"+string(rune('0'+version))+"-upgrade "+req.Query, want, got)
		}
	}
}

// TestMappedLoadParity: an engine serving posting blocks straight out
// of the mapping answers every corpus query bitwise-identically to the
// copying load of the same bytes and to the engine that was dumped.
func TestMappedLoadParity(t *testing.T) {
	e := mutatedEngine(t)
	path, snap := writeSnapFile(t, e)
	heap, err := LoadEngine(bytes.NewReader(snap), fixtureDB(t))
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedFixture(t, path)
	for _, req := range queryCorpus {
		want, err := e.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		viaHeap, err := heap.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		viaMap, err := mapped.Search(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "mapped-vs-dumped "+req.Query, want, viaMap)
		assertIdentical(t, "mapped-vs-heap "+req.Query, viaHeap, viaMap)
	}
}

// TestMappedSaveRoundTrip: saving a mapped-loaded engine reproduces the
// on-disk snapshot byte for byte — the encoder walks mapped posting
// blocks exactly as it walks heap ones.
func TestMappedSaveRoundTrip(t *testing.T) {
	path, snap := writeSnapFile(t, mutatedEngine(t))
	mapped := mappedFixture(t, path)
	var again bytes.Buffer
	if err := SaveEngine(&again, mapped); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, again.Bytes()) {
		t.Fatalf("saving the mapped engine changed the snapshot bytes (%d vs %d)", len(snap), again.Len())
	}
}

// drainMappings settles the finalizer-driven mapping counter — earlier
// tests' garbage mappings may still await collection — and returns the
// stable baseline.
func drainMappings() int64 {
	prev := ActiveMappings()
	for stable := 0; stable < 3; {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
		if cur := ActiveMappings(); cur == prev {
			stable++
		} else {
			prev, stable = cur, 0
		}
	}
	return prev
}

// gcUntil runs GC cycles until cond holds or the deadline passes —
// mapping release rides finalizers, which need a couple of cycles.
func gcUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached after GC deadline", what)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMappedLifetimeAcrossCompact: the mapping must stay alive exactly
// as long as some index epoch references it. Searches run concurrently
// across the Compact() epoch swap; after compaction rebuilds every
// posting block on the heap, the mapping is released by GC even though
// the engine itself lives on.
func TestMappedLifetimeAcrossCompact(t *testing.T) {
	base := drainMappings()
	e := mutatedEngine(t)
	path, _ := writeSnapFile(t, e)
	eng := mappedFixture(t, path)
	if got := ActiveMappings(); got != base+1 {
		t.Fatalf("ActiveMappings = %d after mapped load, want %d", got, base+1)
	}

	// Mutations over mapped blocks: appends must copy, never write
	// through the read-only pages.
	if _, err := eng.AddAnchorInstance("movie-cast", "zz mapped lifetime movie"); err != nil {
		t.Fatal(err)
	}
	if got := searchTopK(eng, "zz mapped lifetime movie", 3); len(got) == 0 {
		t.Fatal("instance added over the mapped index is not searchable")
	}

	// Hammer searches while the compaction epoch swap happens.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Search(context.Background(), search.Request{Query: "star wars cast", K: 5}); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	if _, err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("search failed across the compaction epoch swap: %v", err)
	default:
	}
	if got := searchTopK(eng, "zz mapped lifetime movie", 3); len(got) == 0 {
		t.Fatal("added instance lost across compaction")
	}

	// Compaction rebuilt every block on the heap, so the old epoch —
	// the last holder of the mapping — is garbage now.
	gcUntil(t, "mapping release after compaction", func() bool {
		return ActiveMappings() == base
	})
	runtime.KeepAlive(eng)
}

// TestMappedChurnReloadNoLeak: repeated load/search/drop cycles leave
// no mappings behind once the engines are garbage.
func TestMappedChurnReloadNoLeak(t *testing.T) {
	base := drainMappings()
	path, _ := writeSnapFile(t, mutatedEngine(t))
	for i := 0; i < 5; i++ {
		eng := mappedFixture(t, path)
		if got := searchTopK(eng, "star wars cast", 3); len(got) == 0 {
			t.Fatalf("reload %d: no results", i)
		}
	}
	gcUntil(t, "mapping release after churn", func() bool {
		return ActiveMappings() == base
	})
}

// TestV3BlobCorruption pins the verification boundary: the copying load
// checks the blob's CRC-64 and rejects a flipped posting byte, while
// the mapped load — by design — trusts the blob region it never reads
// at boot.
func TestV3BlobCorruption(t *testing.T) {
	_, snap := writeSnapFile(t, mutatedEngine(t))
	blobLen := v3Blob(t, snap)
	if blobLen == 0 {
		t.Fatal("fixture snapshot has an empty blob")
	}
	bad := append([]byte(nil), snap...)
	bad[16+blobLen/2] ^= 0x40
	if _, err := LoadEngine(bytes.NewReader(bad), fixtureDB(t)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("copy load of a flipped blob byte: err = %v, want ErrChecksum", err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, mapped, err := LoadEngineFile(badPath, fixtureDB(t))
	if !mapped {
		t.Skip("mapped snapshot path unavailable on this platform")
	}
	if err != nil {
		t.Fatalf("mapped load must trust the blob region, got %v", err)
	}

	// Truncations inside the blob region fail as truncation, not as a
	// misdecoded stream.
	for _, cut := range []uint64{17, 16 + blobLen/2, 16 + blobLen - 1} {
		if _, err := LoadEngine(bytes.NewReader(snap[:cut]), fixtureDB(t)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestV3MetadataFlipSweep flips a high bit at every position across the
// v3 metadata section — block counts, blob offsets, doc lengths, the
// lot — recomputing the trailing checksum each time so the decoder's
// structural validation (not the CRC) is what stands between an
// adversarial count or offset and a crash. Every variant must decode to
// a typed error or a healthy engine: no panics, no allocation bombs,
// no out-of-range blob slices.
func TestV3MetadataFlipSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveEngine(&buf, mutatedEngine(t)); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	blobLen := v3Blob(t, snap)
	metaStart := int(16 + blobLen)
	// Sample ~512 positions across the section with a stride coprime to
	// the record layout, so every field kind gets hit without decoding
	// hundreds of thousands of variants.
	stride := (len(snap) - 4 - metaStart) / 512
	if stride < 1 {
		stride = 1
	}
	loaded, rejected := 0, 0
	for off := metaStart; off < len(snap)-4; off += stride {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x80
		rehashV3(bad)
		eng, err := LoadEngine(bytes.NewReader(bad), fixtureDB(t))
		if err != nil {
			rejected++
			continue
		}
		loaded++
		// A tolerated flip (a float, a name byte) must still yield a
		// servable engine.
		if _, err := eng.Search(context.Background(), search.Request{Query: "star wars cast", K: 3}); err != nil {
			t.Fatalf("flip at %d: loaded engine cannot search: %v", off, err)
		}
	}
	if rejected == 0 {
		t.Fatal("no metadata flip was rejected — the structural checks cannot be wired in")
	}
	t.Logf("metadata flip sweep: %d rejected, %d tolerated of %d positions", rejected, loaded, len(snap)-4-metaStart)
}

// TestDecoderPreallocClamp: untrusted counts are clamped both by the
// absolute cap and by the bytes provably remaining in the stream, so a
// lying count cannot commission a huge allocation.
func TestDecoderPreallocClamp(t *testing.T) {
	dec := newDecoder(bytes.NewReader(make([]byte, 160)))
	if got := dec.prealloc(1<<40, 16); got > 10 {
		t.Fatalf("prealloc(1<<40, 16) over a 160-byte stream = %d, want <= 10", got)
	}
	if got := dec.prealloc(4, 16); got != 4 {
		t.Fatalf("prealloc(4, 16) = %d, want 4 (honest counts pass through)", got)
	}
	if got := dec.prealloc(maxPrealloc*100, 1); got > maxPrealloc {
		t.Fatalf("prealloc ignored the absolute cap: %d > %d", got, maxPrealloc)
	}
	// Unknown-length streams still get the absolute cap.
	unsized := newDecoder(io.LimitReader(bytes.NewReader(make([]byte, 160)), 160))
	if got := unsized.prealloc(1<<40, 16); got != maxPrealloc {
		t.Fatalf("prealloc over an unsized stream = %d, want %d", got, maxPrealloc)
	}
}

// TestBlobCopyHugeCount: a corrupt blob length fails fast — via the
// stream-length clamp when the source is sized, and via the
// grow-as-bytes-arrive loop when it is not — instead of attempting the
// full allocation up front.
func TestBlobCopyHugeCount(t *testing.T) {
	sized := newDecoder(bytes.NewReader(make([]byte, 100)))
	if sized.blobCopy(1 << 40); !errors.Is(sized.err, ErrTruncated) {
		t.Fatalf("sized stream: err = %v, want ErrTruncated", sized.err)
	}
	unsized := newDecoder(io.LimitReader(bytes.NewReader(make([]byte, 100)), 100))
	if unsized.blobCopy(1 << 40); !errors.Is(unsized.err, ErrTruncated) {
		t.Fatalf("unsized stream: err = %v, want ErrTruncated", unsized.err)
	}
}
