// Package sqlview implements the qunit definition language from §2 of the
// paper: a SQL-like *base expression* that selects and joins the
// underlying relations, and an XSL-like *conversion expression* that
// renders the resulting tuples for presentation. Together they form a
// qunit definition:
//
//	SELECT * FROM person, cast, movie
//	WHERE cast.movie_id = movie.id AND
//	      cast.person_id = person.id AND
//	      movie.title = "$x"
//	RETURN
//	<cast movie="$x">
//	  <foreach:tuple>
//	    <person>$person.name</person>
//	  </foreach:tuple>
//	</cast>
//
// Applying the definition to a database with a binding for $x derives one
// qunit instance.
package sqlview

import (
	"fmt"
	"strings"

	"qunits/internal/relational"
)

// BaseExpr is the parsed form of a base expression.
type BaseExpr struct {
	// SelectAll is true for SELECT *.
	SelectAll bool
	// Select lists projected columns when SelectAll is false.
	Select []relational.QualifiedColumn
	// From lists the joined tables in declaration order.
	From []string
	// Joins are column=column conditions.
	Joins []relational.EquiJoinSpec
	// Binds are column=parameter or column=literal conditions.
	Binds []Bind
}

// Bind is a selection condition on one column: either a named parameter
// (movie.title = "$x") or a literal (genre.type = "comedy",
// movie.releasedate = 1977).
type Bind struct {
	Col relational.QualifiedColumn
	// Param is the parameter name without the dollar sign, or empty for a
	// literal bind.
	Param string
	// Literal is the constant value for literal binds.
	Literal relational.Value
}

// String renders the base expression back to canonical SQL-ish text.
func (b *BaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if b.SelectAll {
		sb.WriteString("*")
	} else {
		for i, c := range b.Select {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(b.From, ", "))
	conds := make([]string, 0, len(b.Joins)+len(b.Binds))
	for _, j := range b.Joins {
		conds = append(conds, fmt.Sprintf("%s = %s", j.Left, j.Right))
	}
	for _, bd := range b.Binds {
		if bd.Param != "" {
			conds = append(conds, fmt.Sprintf("%s = \"$%s\"", bd.Col, bd.Param))
		} else if bd.Literal.Kind() == relational.KindString {
			conds = append(conds, fmt.Sprintf("%s = %q", bd.Col, bd.Literal.AsString()))
		} else {
			conds = append(conds, fmt.Sprintf("%s = %s", bd.Col, bd.Literal.Render()))
		}
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(conds, " AND "))
	}
	return sb.String()
}

// Params returns the distinct parameter names referenced by the base
// expression, in first-appearance order.
func (b *BaseExpr) Params() []string {
	var out []string
	seen := map[string]bool{}
	for _, bd := range b.Binds {
		if bd.Param != "" && !seen[bd.Param] {
			seen[bd.Param] = true
			out = append(out, bd.Param)
		}
	}
	return out
}

// Node is one node of a parsed conversion expression: an element, a text
// run, or a foreach:tuple loop.
type Node struct {
	// Kind discriminates the node type.
	Kind NodeKind
	// Tag is the element name for NodeElement.
	Tag string
	// Attrs are the element attributes in source order.
	Attrs []Attr
	// Text is the raw text (with $refs unexpanded) for NodeText.
	Text string
	// Children of elements and loops.
	Children []*Node
}

// NodeKind discriminates conversion-expression node types.
type NodeKind uint8

// The node kinds.
const (
	NodeElement NodeKind = iota
	NodeText
	NodeForeach
)

// Attr is one element attribute; Value may contain $refs.
type Attr struct {
	Name  string
	Value string
}

// Template is a parsed conversion expression.
type Template struct {
	Root *Node
}
