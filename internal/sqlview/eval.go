package sqlview

import (
	"fmt"
	"strings"
	"unicode"

	"qunits/internal/ir"
	"qunits/internal/relational"
)

// Eval evaluates the base expression against a database with the given
// parameter bindings, returning the joined tuples. Missing parameters are
// an error; unused parameters are ignored. String parameter binds compare
// case-insensitively on text columns (keyword queries are lowercase;
// stored values may not be).
func (b *BaseExpr) Eval(db *relational.Database, params map[string]string) (*relational.JoinResult, error) {
	// Resolve binds to concrete values.
	type resolvedBind struct {
		col relational.QualifiedColumn
		val relational.Value
	}
	binds := make([]resolvedBind, 0, len(b.Binds))
	boundTables := map[string]bool{}
	for _, bd := range b.Binds {
		v := bd.Literal
		if bd.Param != "" {
			s, ok := params[bd.Param]
			if !ok {
				return nil, fmt.Errorf("sqlview: missing parameter $%s", bd.Param)
			}
			v = relational.String(s)
		}
		binds = append(binds, resolvedBind{col: bd.Col, val: v})
		boundTables[bd.Col.Table] = true
	}

	// Rooting the join at a bound table lets the pre-filter shrink the
	// probe side to (usually) a single entity row before any join work.
	from := append([]string(nil), b.From...)
	for i, tn := range from {
		if boundTables[tn] {
			from[0], from[i] = from[i], from[0]
			break
		}
	}
	order, err := joinOrder(from, b.Joins)
	if err != nil {
		return nil, err
	}

	// Selection pushdown: each bind becomes a pre-filter on its table.
	pre := make(map[string]relational.Predicate, len(boundTables))
	for _, bd := range binds {
		bd := bd
		prev := pre[bd.col.Table]
		p := relational.Func(func(s *relational.TableSchema, r relational.Row) bool {
			i, ok := s.ColumnIndex(bd.col.Column)
			if !ok {
				return false
			}
			return valueMatches(r[i], bd.val)
		})
		if prev != nil {
			pre[bd.col.Table] = relational.And(prev, p)
		} else {
			pre[bd.col.Table] = p
		}
	}
	return db.JoinPre(order, b.Joins, pre, nil)
}

// valueMatches compares a stored value against a bind value: exact Equal
// first, then numeric coercion, then case-insensitive text comparison,
// and finally token-normalized comparison so that keyword-derived
// parameters ("oceans eleven") match punctuated stored values
// ("Ocean's Eleven").
func valueMatches(stored, probe relational.Value) bool {
	if stored.Equal(probe) {
		return true
	}
	if cv, ok := probe.ConvertTo(stored.Kind()); ok && stored.Equal(cv) {
		return true
	}
	if stored.Kind() == relational.KindString && probe.Kind() == relational.KindString {
		if strings.EqualFold(stored.AsString(), probe.AsString()) {
			return true
		}
		return ir.Normalize(stored.AsString()) == ir.Normalize(probe.AsString())
	}
	return false
}

// joinOrder reorders the FROM list so each table after the first is
// linked by a join condition to a table before it — the contract
// relational.Join requires. A single table needs no conditions.
func joinOrder(from []string, joins []relational.EquiJoinSpec) ([]string, error) {
	if len(from) <= 1 {
		return from, nil
	}
	placed := map[string]bool{from[0]: true}
	order := []string{from[0]}
	remaining := append([]string(nil), from[1:]...)
	for len(remaining) > 0 {
		progress := false
		for i, tn := range remaining {
			linked := false
			for _, j := range joins {
				if j.Left.Table == tn && placed[j.Right.Table] ||
					j.Right.Table == tn && placed[j.Left.Table] {
					linked = true
					break
				}
			}
			if linked {
				placed[tn] = true
				order = append(order, tn)
				remaining = append(remaining[:i], remaining[i+1:]...)
				progress = true
				break
			}
		}
		if !progress {
			return nil, fmt.Errorf("sqlview: tables %v are not connected to %v by any join condition", remaining, order)
		}
	}
	return order, nil
}

// Rendering -----------------------------------------------------------------

// Rendered is the output of applying a conversion expression to a base-
// expression result: the XML-ish presentation plus a flat text form used
// for IR indexing and for the "simplified natural English" the paper's
// judges saw.
type Rendered struct {
	XML  string
	Text string
}

// Render applies the template to the join result. $param references
// resolve from params; $table.column references resolve from the current
// tuple inside a foreach loop, and from the first tuple outside one
// (header fields like the movie title are constant across the result).
func (t *Template) Render(js *relational.JoinedSchema, rows []relational.JoinedRow, params map[string]string) Rendered {
	var xml, text strings.Builder
	var current *relational.JoinedRow
	if len(rows) > 0 {
		current = &rows[0]
	}
	renderNode(t.Root, js, rows, params, current, &xml, &text, 0)
	return Rendered{XML: xml.String(), Text: collapseSpace(text.String())}
}

func renderNode(n *Node, js *relational.JoinedSchema, rows []relational.JoinedRow,
	params map[string]string, current *relational.JoinedRow, xml, text *strings.Builder, depth int) {

	sub := func(s string) string { return substitute(s, js, params, current) }
	switch n.Kind {
	case NodeText:
		s := sub(n.Text)
		xml.WriteString(s)
		text.WriteString(s)
		text.WriteByte(' ')
	case NodeForeach:
		for i := range rows {
			row := &rows[i]
			for _, c := range n.Children {
				renderNode(c, js, rows, params, row, xml, text, depth+1)
			}
		}
	case NodeElement:
		xml.WriteString(tagString(n, sub))
		for _, a := range n.Attrs {
			text.WriteString(sub(a.Value))
			text.WriteByte(' ')
		}
		for _, c := range n.Children {
			renderNode(c, js, rows, params, current, xml, text, depth+1)
		}
		xml.WriteString("</" + n.Tag + ">")
		text.WriteByte(' ')
	}
}

// substitute expands $references in s. A reference is $name or
// $table.column; the longest identifier run (with at most one dot) after
// the dollar sign is taken.
func substitute(s string, js *relational.JoinedSchema, params map[string]string, current *relational.JoinedRow) string {
	if !strings.ContainsRune(s, '$') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '$' {
			b.WriteByte(s[i])
			i++
			continue
		}
		j := i + 1
		dots := 0
		for j < len(s) {
			c := rune(s[j])
			if c == '.' && dots == 0 && j+1 < len(s) && isRefRune(rune(s[j+1])) {
				dots++
				j++
				continue
			}
			if isRefRune(c) {
				j++
				continue
			}
			break
		}
		ref := s[i+1 : j]
		if ref == "" {
			b.WriteByte('$')
			i++
			continue
		}
		b.WriteString(resolveRef(ref, js, params, current))
		i = j
	}
	return b.String()
}

func isRefRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func resolveRef(ref string, js *relational.JoinedSchema, params map[string]string, current *relational.JoinedRow) string {
	if q, ok := relational.ParseQualifiedColumn(ref); ok {
		if js != nil && current != nil {
			if v, found := current.Get(js, q); found {
				return v.Render()
			}
		}
		return ""
	}
	if v, ok := params[ref]; ok {
		return v
	}
	return ""
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
