package sqlview

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"qunits/internal/relational"
)

// ParseBase parses a base expression:
//
//	SELECT (* | col[, col...]) FROM table[, table...]
//	[WHERE cond AND cond ...]
//
// where each cond is `qualified = qualified` (a join),
// `qualified = "$param"` (a parameter bind), or
// `qualified = "literal"` / `qualified = number` (a literal bind).
// Keywords are case-insensitive; identifiers are lowercase
// letters/digits/underscores.
func ParseBase(src string) (*BaseExpr, error) {
	p := &sqlParser{toks: lexSQL(src)}
	return p.parse()
}

// MustParseBase is ParseBase that panics on error; for static qunit
// definitions in generators and tests.
func MustParseBase(src string) *BaseExpr {
	b, err := ParseBase(src)
	if err != nil {
		panic(err)
	}
	return b
}

type sqlTok struct {
	kind sqlTokKind
	text string
}

type sqlTokKind uint8

const (
	tokWord sqlTokKind = iota // identifier, keyword, or dotted name
	tokString
	tokNumber
	tokStar
	tokComma
	tokEquals
	tokEOF
)

func lexSQL(src string) []sqlTok {
	var toks []sqlTok
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, sqlTok{tokStar, "*"})
			i++
		case c == ',':
			toks = append(toks, sqlTok{tokComma, ","})
			i++
		case c == '=':
			toks = append(toks, sqlTok{tokEquals, "="})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < n && src[j] != quote {
				j++
			}
			toks = append(toks, sqlTok{tokString, src[i+1 : min(j, n)]})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, sqlTok{tokNumber, src[i:j]})
			i = j
		default:
			if isIdentRune(rune(c)) {
				j := i
				for j < n && (isIdentRune(rune(src[j])) || src[j] == '.') {
					j++
				}
				toks = append(toks, sqlTok{tokWord, src[i:j]})
				i = j
			} else {
				// Skip unknown bytes rather than failing the lexer; the
				// parser reports a useful error on the resulting stream.
				i++
			}
		}
	}
	toks = append(toks, sqlTok{tokEOF, ""})
	return toks
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type sqlParser struct {
	toks []sqlTok
	pos  int
}

func (p *sqlParser) peek() sqlTok { return p.toks[p.pos] }

func (p *sqlParser) next() sqlTok {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokWord || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sqlview: expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *sqlParser) parse() (*BaseExpr, error) {
	b := &BaseExpr{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Select list.
	if p.peek().kind == tokStar {
		p.next()
		b.SelectAll = true
	} else {
		for {
			t := p.next()
			if t.kind != tokWord {
				return nil, fmt.Errorf("sqlview: expected column in select list, got %q", t.text)
			}
			q, ok := relational.ParseQualifiedColumn(t.text)
			if !ok {
				return nil, fmt.Errorf("sqlview: select list column %q must be table.column", t.text)
			}
			b.Select = append(b.Select, q)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokWord {
			return nil, fmt.Errorf("sqlview: expected table name, got %q", t.text)
		}
		if strings.Contains(t.text, ".") {
			return nil, fmt.Errorf("sqlview: table name %q must not be qualified", t.text)
		}
		b.From = append(b.From, t.text)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.peek().kind == tokEOF {
		return b, validateBase(b)
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseCondition(b); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind == tokWord && strings.EqualFold(t.text, "AND") {
			p.next()
			continue
		}
		break
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlview: trailing input at %q", t.text)
	}
	return b, validateBase(b)
}

func (p *sqlParser) parseCondition(b *BaseExpr) error {
	lt := p.next()
	if lt.kind != tokWord {
		return fmt.Errorf("sqlview: expected column on left of condition, got %q", lt.text)
	}
	left, ok := relational.ParseQualifiedColumn(lt.text)
	if !ok {
		return fmt.Errorf("sqlview: condition column %q must be table.column", lt.text)
	}
	if t := p.next(); t.kind != tokEquals {
		return fmt.Errorf("sqlview: expected = after %s, got %q", left, t.text)
	}
	rt := p.next()
	switch rt.kind {
	case tokWord:
		right, ok := relational.ParseQualifiedColumn(rt.text)
		if !ok {
			return fmt.Errorf("sqlview: right side %q must be table.column, \"$param\", or a literal", rt.text)
		}
		b.Joins = append(b.Joins, relational.EquiJoinSpec{Left: left, Right: right})
	case tokString:
		if strings.HasPrefix(rt.text, "$") {
			name := rt.text[1:]
			if name == "" {
				return fmt.Errorf("sqlview: empty parameter name in condition on %s", left)
			}
			b.Binds = append(b.Binds, Bind{Col: left, Param: name})
		} else {
			b.Binds = append(b.Binds, Bind{Col: left, Literal: relational.String(rt.text)})
		}
	case tokNumber:
		if strings.Contains(rt.text, ".") {
			f, err := strconv.ParseFloat(rt.text, 64)
			if err != nil {
				return fmt.Errorf("sqlview: bad number %q", rt.text)
			}
			b.Binds = append(b.Binds, Bind{Col: left, Literal: relational.Float(f)})
		} else {
			n, err := strconv.ParseInt(rt.text, 10, 64)
			if err != nil {
				return fmt.Errorf("sqlview: bad number %q", rt.text)
			}
			b.Binds = append(b.Binds, Bind{Col: left, Literal: relational.Int(n)})
		}
	default:
		return fmt.Errorf("sqlview: unexpected %q on right side of condition", rt.text)
	}
	return nil
}

// validateBase checks that every referenced table appears in FROM.
func validateBase(b *BaseExpr) error {
	inFrom := make(map[string]bool, len(b.From))
	for _, t := range b.From {
		if inFrom[t] {
			return fmt.Errorf("sqlview: table %q listed twice in FROM", t)
		}
		inFrom[t] = true
	}
	check := func(q relational.QualifiedColumn) error {
		if !inFrom[q.Table] {
			return fmt.Errorf("sqlview: column %s references table not in FROM", q)
		}
		return nil
	}
	for _, c := range b.Select {
		if err := check(c); err != nil {
			return err
		}
	}
	for _, j := range b.Joins {
		if err := check(j.Left); err != nil {
			return err
		}
		if err := check(j.Right); err != nil {
			return err
		}
	}
	for _, bd := range b.Binds {
		if err := check(bd.Col); err != nil {
			return err
		}
	}
	return nil
}
