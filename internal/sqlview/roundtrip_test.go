package sqlview

import (
	"math/rand"
	"strings"
	"testing"
)

// Property: Template.Source round-trips through the parser — parsing the
// reconstructed source yields a template that renders identically.
func TestTemplateSourceRoundTrip(t *testing.T) {
	sources := []string{
		castTemplate,
		`<a></a>`,
		`<a b="c" d="e">text</a>`,
		`<profile name="$x"><title>$movie.title</title><year>$movie.year</year></profile>`,
		`<outer><foreach:tuple><inner>$person.name</inner> and more</foreach:tuple>tail</outer>`,
		`<a><b/><c>x</c></a>`,
	}
	for _, src := range sources {
		tpl, err := ParseTemplate(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		re, err := ParseTemplate(tpl.Source())
		if err != nil {
			t.Fatalf("reparse of Source() %q: %v", tpl.Source(), err)
		}
		params := map[string]string{"x": "VALUE"}
		a := tpl.Render(nil, nil, params)
		b := re.Render(nil, nil, params)
		if a.XML != b.XML || a.Text != b.Text {
			t.Errorf("round trip changed rendering for %q:\n%q\n%q", src, a.XML, b.XML)
		}
	}
}

// Property: the base-expression printer and parser are mutually inverse
// on randomly generated expressions.
func TestBaseExprRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	tables := []string{"alpha", "beta", "gamma", "delta"}
	cols := []string{"id", "name", "ref"}
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(3)
		from := append([]string(nil), tables[:n]...)
		var conds []string
		for j := 1; j < n; j++ {
			conds = append(conds, from[j]+"."+cols[r.Intn(len(cols))]+" = "+from[j-1]+"."+cols[r.Intn(len(cols))])
		}
		switch r.Intn(3) {
		case 0:
			conds = append(conds, from[0]+".name = \"$x\"")
		case 1:
			conds = append(conds, from[0]+".id = 42")
		}
		src := "SELECT * FROM " + strings.Join(from, ", ")
		if len(conds) > 0 {
			src += " WHERE " + strings.Join(conds, " AND ")
		}
		b, err := ParseBase(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		again, err := ParseBase(b.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", b.String(), err)
		}
		if again.String() != b.String() {
			t.Fatalf("not a fixed point:\n%s\n%s", b.String(), again.String())
		}
	}
}

// Robustness: the template parser never panics on arbitrary input.
func TestTemplateParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	alphabet := []byte(`<>/"= abfx$.`)
	for i := 0; i < 3000; i++ {
		n := r.Intn(30)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		// Must not panic; errors are fine.
		_, _ = ParseTemplate(string(buf))
		_, _ = ParseBase(string(buf))
	}
}

// Robustness: rendering with hostile parameter values never panics and
// never leaks template syntax.
func TestRenderHostileParams(t *testing.T) {
	tpl := MustParseTemplate(`<a name="$x">$x</a>`)
	for _, v := range []string{"", `"><script>`, "$y", "a$b.c", strings.Repeat("x", 10000)} {
		out := tpl.Render(nil, nil, map[string]string{"x": v})
		if out.XML == "" {
			t.Errorf("empty render for %q", v[:min(len(v), 20)])
		}
	}
}
