package sqlview

import (
	"strings"
	"testing"

	"qunits/internal/relational"
)

func testDB(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase("t")
	db.MustCreateTable(relational.MustTableSchema("person", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Label: true},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("movie", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Label: true},
		{Name: "year", Kind: relational.KindInt},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("cast", []relational.Column{
		{Name: "person_id", Kind: relational.KindInt},
		{Name: "movie_id", Kind: relational.KindInt},
		{Name: "role", Kind: relational.KindString},
	}, "", []relational.ForeignKey{
		{Column: "person_id", RefTable: "person"},
		{Column: "movie_id", RefTable: "movie"},
	}))
	p := db.Table("person")
	p.MustInsert(relational.Row{relational.Int(1), relational.String("Mark Hamill")})
	p.MustInsert(relational.Row{relational.Int(2), relational.String("Carrie Fisher")})
	p.MustInsert(relational.Row{relational.Int(3), relational.String("George Clooney")})
	m := db.Table("movie")
	m.MustInsert(relational.Row{relational.Int(1), relational.String("star wars"), relational.Int(1977)})
	m.MustInsert(relational.Row{relational.Int(2), relational.String("ocean's eleven"), relational.Int(2001)})
	c := db.Table("cast")
	c.MustInsert(relational.Row{relational.Int(1), relational.Int(1), relational.String("luke")})
	c.MustInsert(relational.Row{relational.Int(2), relational.Int(1), relational.String("leia")})
	c.MustInsert(relational.Row{relational.Int(3), relational.Int(2), relational.String("danny ocean")})
	return db
}

const castBase = `SELECT * FROM person, cast, movie
WHERE cast.movie_id = movie.id AND
cast.person_id = person.id AND
movie.title = "$x"`

const castTemplate = `<cast movie="$x">
<foreach:tuple>
<person>$person.name</person>
</foreach:tuple>
</cast>`

func TestParseBasePaperExample(t *testing.T) {
	b, err := ParseBase(castBase)
	if err != nil {
		t.Fatal(err)
	}
	if !b.SelectAll {
		t.Error("SelectAll false")
	}
	if len(b.From) != 3 || b.From[0] != "person" || b.From[2] != "movie" {
		t.Errorf("From = %v", b.From)
	}
	if len(b.Joins) != 2 {
		t.Errorf("Joins = %v", b.Joins)
	}
	if len(b.Binds) != 1 || b.Binds[0].Param != "x" || b.Binds[0].Col.String() != "movie.title" {
		t.Errorf("Binds = %v", b.Binds)
	}
	if got := b.Params(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Params = %v", got)
	}
}

func TestParseBaseRoundTrip(t *testing.T) {
	b := MustParseBase(castBase)
	again, err := ParseBase(b.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", b.String(), err)
	}
	if again.String() != b.String() {
		t.Errorf("round trip differs:\n%s\n%s", b.String(), again.String())
	}
}

func TestParseBaseSelectList(t *testing.T) {
	b, err := ParseBase(`SELECT person.name, movie.title FROM person, cast, movie WHERE cast.person_id = person.id AND cast.movie_id = movie.id`)
	if err != nil {
		t.Fatal(err)
	}
	if b.SelectAll || len(b.Select) != 2 {
		t.Errorf("Select = %v", b.Select)
	}
	if !strings.Contains(b.String(), "person.name, movie.title") {
		t.Errorf("String = %q", b.String())
	}
}

func TestParseBaseLiterals(t *testing.T) {
	b, err := ParseBase(`SELECT * FROM movie WHERE movie.year = 1977 AND movie.title = "star wars"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Binds) != 2 {
		t.Fatalf("Binds = %v", b.Binds)
	}
	if b.Binds[0].Literal.AsInt() != 1977 {
		t.Errorf("int literal = %v", b.Binds[0].Literal)
	}
	if b.Binds[1].Literal.AsString() != "star wars" {
		t.Errorf("string literal = %v", b.Binds[1].Literal)
	}
	// Float literal.
	f, err := ParseBase(`SELECT * FROM movie WHERE movie.year = 7.5`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Binds[0].Literal.AsFloat() != 7.5 {
		t.Errorf("float literal = %v", f.Binds[0].Literal)
	}
}

func TestParseBaseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM person",
		"SELECT",
		"SELECT * WHERE x.y = 1",
		"SELECT * FROM",
		"SELECT * FROM person WHERE",
		"SELECT * FROM person WHERE name = 1",    // unqualified column
		"SELECT * FROM person WHERE person.name", // missing =
		"SELECT * FROM person WHERE person.name = ",       // missing rhs
		"SELECT * FROM person WHERE movie.title = \"$x\"", // table not in FROM
		"SELECT movie.title FROM person",                  // select references missing table
		"SELECT * FROM person, person",                    // duplicate table
		"SELECT * FROM person extra garbage",
		`SELECT * FROM person WHERE person.name = "$"`, // empty param
		"SELECT * FROM person.name",                    // qualified table
	}
	for _, src := range bad {
		if _, err := ParseBase(src); err == nil {
			t.Errorf("ParseBase(%q) accepted", src)
		}
	}
}

func TestMustParseBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustParseBase("garbage")
}

func TestEvalPaperExample(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(castBase)
	res, err := b.Eval(db, map[string]string{"x": "star wars"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (luke, leia)", len(res.Rows))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		v, _ := r.Get(res.Schema, relational.QualifiedColumn{Table: "person", Column: "name"})
		names[v.AsString()] = true
	}
	if !names["Mark Hamill"] || !names["Carrie Fisher"] {
		t.Errorf("names = %v", names)
	}
}

func TestEvalCaseInsensitiveBind(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(`SELECT * FROM person WHERE person.name = "$x"`)
	res, err := b.Eval(db, map[string]string{"x": "george clooney"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d; case-insensitive match failed", len(res.Rows))
	}
}

func TestEvalNumericCoercionBind(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(`SELECT * FROM movie WHERE movie.year = "$y"`)
	res, err := b.Eval(db, map[string]string{"y": "1977"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d; string→int bind failed", len(res.Rows))
	}
}

func TestEvalMissingParam(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(castBase)
	if _, err := b.Eval(db, nil); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestEvalReordersFrom(t *testing.T) {
	db := testDB(t)
	// movie listed before cast: join order must be fixed automatically.
	b := MustParseBase(`SELECT * FROM person, movie, cast
WHERE cast.movie_id = movie.id AND cast.person_id = person.id`)
	res, err := b.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestEvalDisconnectedTables(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(`SELECT * FROM person, movie`)
	if _, err := b.Eval(db, nil); err == nil {
		t.Error("disconnected FROM accepted")
	}
}

func TestParseTemplatePaperExample(t *testing.T) {
	tpl, err := ParseTemplate(castTemplate)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Root.Tag != "cast" {
		t.Errorf("root = %q", tpl.Root.Tag)
	}
	if len(tpl.Root.Attrs) != 1 || tpl.Root.Attrs[0].Name != "movie" {
		t.Errorf("attrs = %v", tpl.Root.Attrs)
	}
	var foreach *Node
	for _, c := range tpl.Root.Children {
		if c.Kind == NodeForeach {
			foreach = c
		}
	}
	if foreach == nil {
		t.Fatal("no foreach:tuple node")
	}
}

func TestParseTemplateErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"just text",
		"<a><b></a></b>",
		"<a>",
		"</a>",
		"<a b=c></a>",
		`<a b="unterminated></a>`,
		"<a><b></b></a><c></c>", // two roots
		"<>x</>",
		`<a b></a>`,
	}
	for _, src := range bad {
		if _, err := ParseTemplate(src); err == nil {
			t.Errorf("ParseTemplate(%q) accepted", src)
		}
	}
}

func TestMustParseTemplatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustParseTemplate("<unclosed>")
}

func TestRenderPaperExample(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(castBase)
	params := map[string]string{"x": "star wars"}
	res, err := b.Eval(db, params)
	if err != nil {
		t.Fatal(err)
	}
	tpl := MustParseTemplate(castTemplate)
	out := tpl.Render(res.Schema, res.Rows, params)
	for _, want := range []string{`<cast movie="star wars">`, "<person>Mark Hamill</person>", "<person>Carrie Fisher</person>", "</cast>"} {
		if !strings.Contains(out.XML, want) {
			t.Errorf("XML missing %q:\n%s", want, out.XML)
		}
	}
	for _, want := range []string{"star wars", "Mark Hamill", "Carrie Fisher"} {
		if !strings.Contains(out.Text, want) {
			t.Errorf("Text missing %q: %q", want, out.Text)
		}
	}
}

func TestRenderEmptyResult(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(castBase)
	params := map[string]string{"x": "no such movie"}
	res, err := b.Eval(db, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("expected empty result")
	}
	tpl := MustParseTemplate(castTemplate)
	out := tpl.Render(res.Schema, res.Rows, params)
	if !strings.Contains(out.XML, `<cast movie="no such movie">`) {
		t.Errorf("XML = %q", out.XML)
	}
	if strings.Contains(out.XML, "<person>") {
		t.Error("foreach emitted tuples for empty result")
	}
}

func TestRenderOutsideForeachUsesFirstRow(t *testing.T) {
	db := testDB(t)
	b := MustParseBase(`SELECT * FROM movie WHERE movie.title = "$x"`)
	params := map[string]string{"x": "star wars"}
	res, _ := b.Eval(db, params)
	tpl := MustParseTemplate(`<movie><title>$movie.title</title><year>$movie.year</year></movie>`)
	out := tpl.Render(res.Schema, res.Rows, params)
	if !strings.Contains(out.XML, "<year>1977</year>") {
		t.Errorf("XML = %q", out.XML)
	}
}

func TestSubstituteEdgeCases(t *testing.T) {
	// Unknown refs vanish; lone dollar survives; dollar at end survives.
	got := substitute("cost: $unknown and $ 5 and end$", nil, map[string]string{}, nil)
	if got != "cost:  and $ 5 and end$" {
		t.Errorf("substitute = %q", got)
	}
	got = substitute("$a.b.c", nil, map[string]string{}, nil)
	// $a.b consumed as table.column (empty), then ".c" remains.
	if !strings.HasSuffix(got, ".c") {
		t.Errorf("substitute = %q", got)
	}
}

func TestSelfClosingTag(t *testing.T) {
	tpl, err := ParseTemplate(`<profile><br/><name>$x</name></profile>`)
	if err != nil {
		t.Fatal(err)
	}
	out := tpl.Render(nil, nil, map[string]string{"x": "abc"})
	if !strings.Contains(out.XML, "<br></br>") && !strings.Contains(out.XML, "<br/>") {
		t.Errorf("self-closing rendered as %q", out.XML)
	}
	if !strings.Contains(out.XML, "<name>abc</name>") {
		t.Errorf("XML = %q", out.XML)
	}
}
