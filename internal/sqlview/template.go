package sqlview

import (
	"fmt"
	"strings"
)

// ParseTemplate parses a conversion expression: a minimal XML dialect with
// elements, attributes, text, $references, and the special
// <foreach:tuple>…</foreach:tuple> loop that repeats its children once per
// result tuple. A template must have exactly one root element.
func ParseTemplate(src string) (*Template, error) {
	p := &tmplParser{src: src}
	nodes, err := p.parseNodes("")
	if err != nil {
		return nil, err
	}
	var root *Node
	for _, n := range nodes {
		if n.Kind == NodeText && strings.TrimSpace(n.Text) == "" {
			continue
		}
		if root != nil {
			return nil, fmt.Errorf("sqlview: template has more than one root node")
		}
		root = n
	}
	if root == nil {
		return nil, fmt.Errorf("sqlview: empty template")
	}
	if root.Kind != NodeElement && root.Kind != NodeForeach {
		return nil, fmt.Errorf("sqlview: template root must be an element")
	}
	return &Template{Root: root}, nil
}

// MustParseTemplate is ParseTemplate that panics on error.
func MustParseTemplate(src string) *Template {
	t, err := ParseTemplate(src)
	if err != nil {
		panic(err)
	}
	return t
}

type tmplParser struct {
	src string
	pos int
}

// parseNodes parses until </closeTag> (or end of input when closeTag is
// empty).
func (p *tmplParser) parseNodes(closeTag string) ([]*Node, error) {
	var nodes []*Node
	for p.pos < len(p.src) {
		if strings.HasPrefix(p.src[p.pos:], "</") {
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sqlview: unterminated close tag at offset %d", p.pos)
			}
			name := strings.TrimSpace(p.src[p.pos+2 : p.pos+end])
			if name != closeTag {
				return nil, fmt.Errorf("sqlview: mismatched close tag </%s>, open tag was <%s>", name, closeTag)
			}
			p.pos += end + 1
			return nodes, nil
		}
		if p.src[p.pos] == '<' {
			n, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
			continue
		}
		// Text run until next tag.
		next := strings.IndexByte(p.src[p.pos:], '<')
		var text string
		if next < 0 {
			text = p.src[p.pos:]
			p.pos = len(p.src)
		} else {
			text = p.src[p.pos : p.pos+next]
			p.pos += next
		}
		if text != "" {
			nodes = append(nodes, &Node{Kind: NodeText, Text: text})
		}
	}
	if closeTag != "" {
		return nil, fmt.Errorf("sqlview: missing </%s>", closeTag)
	}
	return nodes, nil
}

func (p *tmplParser) parseElement() (*Node, error) {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return nil, fmt.Errorf("sqlview: unterminated tag at offset %d", p.pos)
	}
	inner := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	selfClosing := strings.HasSuffix(inner, "/")
	if selfClosing {
		inner = strings.TrimSuffix(inner, "/")
	}
	name, attrs, err := parseTagBody(inner)
	if err != nil {
		return nil, err
	}
	kind := NodeElement
	if name == "foreach:tuple" {
		kind = NodeForeach
	}
	n := &Node{Kind: kind, Tag: name, Attrs: attrs}
	if selfClosing {
		return n, nil
	}
	children, err := p.parseNodes(name)
	if err != nil {
		return nil, err
	}
	n.Children = children
	return n, nil
}

func parseTagBody(s string) (string, []Attr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", nil, fmt.Errorf("sqlview: empty tag")
	}
	// Tag name runs until whitespace.
	nameEnd := strings.IndexAny(s, " \t\n\r")
	if nameEnd < 0 {
		return s, nil, nil
	}
	name := s[:nameEnd]
	rest := strings.TrimSpace(s[nameEnd:])
	var attrs []Attr
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("sqlview: malformed attribute in <%s>", name)
		}
		aname := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) < 2 || rest[0] != '"' {
			return "", nil, fmt.Errorf("sqlview: attribute %s in <%s> must be double-quoted", aname, name)
		}
		close := strings.IndexByte(rest[1:], '"')
		if close < 0 {
			return "", nil, fmt.Errorf("sqlview: unterminated attribute value in <%s>", name)
		}
		attrs = append(attrs, Attr{Name: aname, Value: rest[1 : 1+close]})
		rest = strings.TrimSpace(rest[close+2:])
	}
	return name, attrs, nil
}

// tagString renders a node's open tag with substituted attributes.
func tagString(n *Node, sub func(string) string) string {
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(n.Tag)
	for _, a := range n.Attrs {
		fmt.Fprintf(&b, " %s=%q", a.Name, sub(a.Value))
	}
	b.WriteByte('>')
	return b.String()
}

// Source reconstructs the template's markup; ParseTemplate(t.Source()) is
// equivalent to t. Catalog persistence round-trips templates through this
// form.
func (t *Template) Source() string {
	var b strings.Builder
	writeNodeSource(&b, t.Root)
	return b.String()
}

func writeNodeSource(b *strings.Builder, n *Node) {
	switch n.Kind {
	case NodeText:
		b.WriteString(n.Text)
	case NodeForeach, NodeElement:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			writeNodeSource(b, c)
		}
		b.WriteString("</" + n.Tag + ">")
	}
}
