package synth

import (
	"fmt"

	"qunits/internal/core"
	"qunits/internal/ir"
	"qunits/internal/relational"
)

// CountInstances computes exactly how many qunit instances a catalog
// will materialize — without materializing any of them. MaterializeAll
// emits one instance per distinct normalized anchor label whose group
// joins to at least one tuple, so for each definition the counter scans
// the anchor table once, gates each anchor row on the fact tables in the
// definition's base that directly reference it (every other join on the
// path is guaranteed by foreign-key integrity), and counts the distinct
// normalized labels that survive.
//
// The direct-reference gate is exact for catalogs whose aspect joins hop
// anchor → fact → far-side entity, which covers everything the deriver
// produces over the IMDb and university schemas; the parity tests pin
// this against engine.InstanceCount. Parameterless definitions
// materialize exactly one instance.
func CountInstances(cat *core.Catalog) (int, error) {
	db := cat.DB()
	total := 0
	for _, d := range cat.Definitions() {
		_, col, ok := d.AnchorParam()
		if !ok {
			total++
			continue
		}
		anchorT := db.Table(col.Table)
		if anchorT == nil {
			return 0, fmt.Errorf("synth: definition %q anchors on missing table %q", d.Name, col.Table)
		}
		schema := anchorT.Schema()
		if schema.PrimaryKey == "" {
			return 0, fmt.Errorf("synth: definition %q anchors on table %q without a primary key", d.Name, col.Table)
		}
		pkIdx, _ := schema.ColumnIndex(schema.PrimaryKey)
		labelIdx, okc := schema.ColumnIndex(col.Column)
		if !okc {
			return 0, fmt.Errorf("synth: definition %q anchors on missing column %s.%s", d.Name, col.Table, col.Column)
		}
		var present []map[int64]struct{}
		for _, tn := range d.Base.From {
			if tn == col.Table {
				continue
			}
			ft := db.Table(tn)
			if ft == nil {
				return 0, fmt.Errorf("synth: definition %q references missing table %q", d.Name, tn)
			}
			for _, fk := range ft.Schema().ForeignKeys {
				if fk.RefTable != col.Table {
					continue
				}
				fkIdx, okf := ft.Schema().ColumnIndex(fk.Column)
				if !okf {
					continue
				}
				set := make(map[int64]struct{}, ft.Len())
				ft.Scan(func(_ int, row relational.Row) bool {
					set[row[fkIdx].AsInt()] = struct{}{}
					return true
				})
				present = append(present, set)
			}
		}
		labels := make(map[string]struct{})
		anchorT.Scan(func(_ int, row relational.Row) bool {
			pk := row[pkIdx].AsInt()
			for _, set := range present {
				if _, hit := set[pk]; !hit {
					return true
				}
			}
			labels[ir.Normalize(row[labelIdx].Render())] = struct{}{}
			return true
		})
		total += len(labels)
	}
	return total, nil
}
