// Package synth scales the repo's synthetic schemas to production-size
// corpora. The stock internal/imdb generator is tuned for laptop-scale
// experiments (thousands of entities); this package generates the same
// 17-table IMDb schema — and the university schema from the examples —
// at millions of qunit instances, deterministically from a single seed.
//
// The generator streams: every movie's dependent fact rows (cast, crew,
// keywords, awards, soundtrack, ...) are emitted in the same pass that
// inserts the movie row, names come from an arithmetic walk over the
// first×last composition space instead of a rejection sampler, and no
// intermediate slice beyond the entity views (which the Universe API
// requires anyway) is ever held. Sizing is instance-driven rather than
// row-driven: ForInstances solves the expert-catalog instance model for
// entity counts, and CountInstances computes the exact number of
// instances a catalog will materialize without materializing them.
package synth

import (
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"math/rand"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

// Config controls the size and randomness of the generated corpus. It
// mirrors imdb.Config: equal seeds produce identical databases.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Persons is the number of people to generate.
	Persons int
	// Movies is the number of movies to generate.
	Movies int
	// CastPerMovie is the mean cast size.
	CastPerMovie int
	// PopularityExponent shapes the Zipfian head; ~0.8-1.2 is realistic.
	PopularityExponent float64
}

// DefaultConfig returns the million-instance configuration the load
// harness runs against.
func DefaultConfig() Config {
	return ForInstances(1_000_000)
}

func (cfg Config) withDefaults() Config {
	v := imdb.Vocabulary()
	if cfg.Persons < len(v.FamousPeople) {
		cfg.Persons = len(v.FamousPeople)
	}
	if cfg.Movies < len(v.FamousMovies) {
		cfg.Movies = len(v.FamousMovies)
	}
	if cfg.CastPerMovie <= 0 {
		cfg.CastPerMovie = 6
	}
	if cfg.PopularityExponent <= 0 {
		cfg.PopularityExponent = 0.9
	}
	return cfg
}

// Aspect rates, matching internal/imdb so corpora at every scale have the
// same shape. awardRate is P(rating >= 7.5) * 0.6 under the generator's
// rating law 10*(0.35 + 0.65*u*v): P(u*v >= 8/13) = 1 - a + a*ln(a) with
// a = 8/13, ≈ 0.086, times the 0.6 nomination gate.
const (
	akaRate        = 0.2
	soundtrackRate = 0.3
	boxOfficeRate  = 0.85
	triviaRate     = 0.4
	remakeRate     = 0.02
	awardRate      = 0.0515
	// personsPerMovie is the entity ratio ForInstances maintains.
	personsPerMovie = 2
)

// instancesPerMovieLabel is the expected expert-catalog instance count
// per distinct movie title: summary, cast, crew, keywords, and locations
// always materialize (cast size is >= 1 and the location/info joins are
// FK-guaranteed), the remaining aspects at their rates.
const instancesPerMovieLabel = 5 + soundtrackRate + boxOfficeRate + triviaRate + awardRate

// EstimatedInstances predicts how many instances the expert catalog
// materializes over a corpus generated with cfg: one profile per person
// (names are unique by construction) plus instancesPerMovieLabel per
// distinct movie title (deliberate remakes merge into their original's
// qunit group).
func EstimatedInstances(cfg Config) int {
	cfg = cfg.withDefaults()
	titles := float64(cfg.Movies) * (1 - remakeRate)
	return int(titles*instancesPerMovieLabel) + cfg.Persons
}

// ForInstances returns a configuration expected to materialize at least
// n expert-catalog instances, with a small margin over the estimate to
// absorb the binomial noise of the aspect rates.
func ForInstances(n int) Config {
	perMovie := (1-remakeRate)*instancesPerMovieLabel + personsPerMovie
	movies := int(math.Ceil(1.05 * float64(n) / perMovie))
	cfg := Config{
		Seed:               1,
		Movies:             movies,
		Persons:            personsPerMovie * movies,
		CastPerMovie:       6,
		PopularityExponent: 0.9,
	}
	return cfg.withDefaults()
}

// Generate builds the corpus. The result is a full imdb.Universe, so the
// query-log generator and every downstream consumer work unchanged.
func Generate(cfg Config) (*imdb.Universe, error) {
	cfg = cfg.withDefaults()
	v := imdb.Vocabulary()
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDatabase("imdb")
	for _, s := range imdb.Schemas() {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}

	// Static dimension tables, identical in layout to internal/imdb.
	genreT := db.Table(imdb.TableGenre)
	for i, g := range v.Genres {
		genreT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(g)})
	}
	locT := db.Table(imdb.TableLocations)
	for i, p := range v.Places {
		lvl := v.PlaceLevels[r.Intn(len(v.PlaceLevels))]
		locT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(p), relational.String(lvl)})
	}
	compT := db.Table(imdb.TableCompany)
	for i, c := range v.CompanyNames {
		compT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)), relational.String(c),
			relational.String(v.CompanyCountries[r.Intn(len(v.CompanyCountries))]),
		})
	}
	kwT := db.Table(imdb.TableKeyword)
	for i, k := range v.KeywordWords {
		kwT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(k)})
	}
	awT := db.Table(imdb.TableAward)
	for i, a := range v.AwardNames {
		awT.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(a)})
	}

	// Persons: the namer walks a seed-permuted arithmetic sequence over
	// the first×last composition space, so names are unique at any scale
	// without a seen-map or rejection loop.
	namer := newPersonNamer(cfg.Seed, v)
	personT := db.Table(imdb.TablePerson)
	persons := make([]imdb.Entity, 0, cfg.Persons)
	for i := 0; i < cfg.Persons; i++ {
		name := namer.name(i)
		g := "m"
		if r.Intn(2) == 0 {
			g = "f"
		}
		bd := fmt.Sprintf("%04d-%02d-%02d", 1925+r.Intn(75), 1+r.Intn(12), 1+r.Intn(28))
		id := int64(i + 1)
		row := personT.MustInsert(relational.Row{
			relational.Int(id), relational.String(name),
			relational.String(bd), relational.String(g),
		})
		persons = append(persons, imdb.Entity{
			Name: name, Table: imdb.TablePerson, Row: row, PK: id,
			Weight: imdb.ZipfWeight(i, cfg.PopularityExponent),
		})
	}
	// Person sampler for cast/crew/soundtrack assignment; the full
	// universe (with movies) is rebuilt at the end.
	pu := imdb.NewUniverse(db, persons, nil)

	// Movies: one pass per movie emits the movie row and every dependent
	// fact row, so the generator never rescans the movie table.
	titler := newMovieTitler(v)
	infoT := db.Table(imdb.TableInfo)
	movieT := db.Table(imdb.TableMovie)
	castT := db.Table(imdb.TableCast)
	crewT := db.Table(imdb.TableCrew)
	akaT := db.Table(imdb.TableAkaTitle)
	mcT := db.Table(imdb.TableMovieCompany)
	mkT := db.Table(imdb.TableMovieKeyword)
	maT := db.Table(imdb.TableMovieAward)
	stT := db.Table(imdb.TableSoundtrack)
	boT := db.Table(imdb.TableBoxOffice)
	trT := db.Table(imdb.TableTrivia)
	movies := make([]imdb.Entity, 0, cfg.Movies)
	for i := 0; i < cfg.Movies; i++ {
		var title string
		switch {
		case i < len(v.FamousMovies):
			title = v.FamousMovies[i]
		case r.Float64() < remakeRate:
			// Remake: duplicate an existing title (the paper's point that
			// titles are not unique).
			title = movies[r.Intn(len(movies))].Name
		default:
			title = titler.next(r)
		}
		id := int64(i + 1)
		plot := v.PlotFragments[r.Intn(len(v.PlotFragments))] + "; " +
			v.PlotFragments[r.Intn(len(v.PlotFragments))]
		infoT.MustInsert(relational.Row{relational.Int(id), relational.String(plot)})
		year := 1950 + r.Intn(59)
		rating := 10 * (0.35 + 0.65*r.Float64()*r.Float64())
		rating = math.Round(rating*10) / 10
		row := movieT.MustInsert(relational.Row{
			relational.Int(id), relational.String(title),
			relational.Int(int64(year)), relational.Float(rating),
			relational.Int(int64(1 + r.Intn(len(v.Genres)))),
			relational.Int(int64(1 + r.Intn(len(v.Places)))),
			relational.Int(id),
		})
		movies = append(movies, imdb.Entity{
			Name: title, Table: imdb.TableMovie, Row: row, PK: id,
			Weight: imdb.ZipfWeight(i, cfg.PopularityExponent),
		})

		// Cast: popular people cluster in popular movies.
		n := 1 + r.Intn(2*cfg.CastPerMovie)
		seenCast := make(map[int64]bool, n)
		for j := 0; j < n; j++ {
			p := pu.SamplePerson(r)
			if seenCast[p.PK] {
				continue
			}
			seenCast[p.PK] = true
			castT.MustInsert(relational.Row{
				relational.Int(p.PK), relational.Int(id),
				relational.String(v.CastRoles[r.Intn(len(v.CastRoles))]),
			})
		}
		// Crew: a director plus a couple of others.
		jobs := []string{"director"}
		for j := 0; j < 1+r.Intn(3); j++ {
			jobs = append(jobs, v.CrewJobs[1+r.Intn(len(v.CrewJobs)-1)])
		}
		for _, job := range jobs {
			p := pu.SamplePerson(r)
			crewT.MustInsert(relational.Row{
				relational.Int(p.PK), relational.Int(id), relational.String(job),
			})
		}
		if r.Float64() < akaRate {
			aka := "aka " + v.TitleNouns[r.Intn(len(v.TitleNouns))] + " " + v.TitleNouns[r.Intn(len(v.TitleNouns))]
			akaT.MustInsert(relational.Row{relational.Int(id), relational.String(aka)})
		}
		for j := 0; j < 1+r.Intn(2); j++ {
			mcT.MustInsert(relational.Row{
				relational.Int(id),
				relational.Int(int64(1 + r.Intn(len(v.CompanyNames)))),
				relational.String(v.CompanyKinds[r.Intn(len(v.CompanyKinds))]),
			})
		}
		nk := 2 + r.Intn(4)
		seenKw := make(map[int64]bool, nk)
		for j := 0; j < nk; j++ {
			k := int64(1 + r.Intn(len(v.KeywordWords)))
			if seenKw[k] {
				continue
			}
			seenKw[k] = true
			mkT.MustInsert(relational.Row{relational.Int(id), relational.Int(k)})
		}
		if rating >= 7.5 && r.Float64() < 0.6 {
			maT.MustInsert(relational.Row{
				relational.Int(id),
				relational.Int(int64(1 + r.Intn(len(v.AwardNames)))),
				relational.Int(int64(year + 1)),
				relational.Bool(r.Float64() < 0.35),
			})
		}
		if r.Float64() < soundtrackRate {
			for j := 0; j < 1+r.Intn(3); j++ {
				track := v.TrackWords[r.Intn(len(v.TrackWords))] + " in " +
					v.TitleNouns[r.Intn(len(v.TitleNouns))]
				stT.MustInsert(relational.Row{
					relational.Int(id), relational.String(track),
					relational.String(pu.SamplePerson(r).Name),
				})
			}
		}
		if r.Float64() < boxOfficeRate {
			gross := int64(1+r.Intn(900)) * 1_000_000
			boT.MustInsert(relational.Row{
				relational.Int(id), relational.Int(gross),
				relational.Int(gross / int64(3+r.Intn(10))),
			})
		}
		if r.Float64() < triviaRate {
			for j := 0; j < 1+r.Intn(2); j++ {
				trT.MustInsert(relational.Row{
					relational.Int(id),
					relational.String(v.TriviaFragments[r.Intn(len(v.TriviaFragments))]),
				})
			}
		}
	}

	db.Tables(func(t *relational.Table) {
		for _, fk := range t.Schema().ForeignKeys {
			if err := t.CreateIndex(fk.Column); err != nil {
				panic(err) // unreachable: columns come from validated schemas
			}
		}
	})
	if err := db.ValidateForeignKeys(); err != nil {
		return nil, fmt.Errorf("synth: generated database fails FK validation: %w", err)
	}
	return imdb.NewUniverse(db, persons, movies), nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *imdb.Universe {
	u, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// personNamer assigns person i a unique name in O(1) with no seen-map:
// index i maps to a slot in a seed-permuted arithmetic walk over the
// first×last composition space, and each full lap adds a generation
// suffix ("ii", "iii", ...). The famous anchors occupy the head; a
// generated collision with an anchor takes a "jr".
type personNamer struct {
	first, last []string
	anchors     []string
	anchorSet   map[string]bool
	combos      int
	start, step int
}

func newPersonNamer(seed int64, v imdb.Vocab) *personNamer {
	n := &personNamer{
		first:     v.FirstNames,
		last:      v.LastNames,
		anchors:   v.FamousPeople,
		anchorSet: make(map[string]bool, len(v.FamousPeople)),
		combos:    len(v.FirstNames) * len(v.LastNames),
	}
	for _, a := range n.anchors {
		n.anchorSet[a] = true
	}
	h := splitmix64(uint64(seed))
	n.start = int(h % uint64(n.combos))
	n.step = int((h>>17)%uint64(n.combos)) | 1
	for gcd(n.step, n.combos) != 1 {
		n.step += 2
	}
	return n
}

func (n *personNamer) name(i int) string {
	if i < len(n.anchors) {
		return n.anchors[i]
	}
	j := i - len(n.anchors)
	combo := (n.start + j*n.step) % n.combos
	gen := j / n.combos
	name := n.first[combo%len(n.first)] + " " + n.last[combo/len(n.first)]
	if gen > 0 {
		return name + " " + imdb.OrdinalSuffix(gen+1)
	}
	if n.anchorSet[name] {
		return name + " jr"
	}
	return name
}

// movieTitler composes pattern titles, numbering collisions as sequels —
// amortized O(1) per title, never rejects. Deliberate remakes are the
// caller's business (they duplicate an emitted title on purpose).
type movieTitler struct {
	v       imdb.Vocab
	seen    map[string]bool
	sequels map[string]int
}

func newMovieTitler(v imdb.Vocab) *movieTitler {
	t := &movieTitler{v: v, seen: make(map[string]bool), sequels: make(map[string]int)}
	for _, f := range v.FamousMovies {
		t.seen[f] = true
	}
	return t
}

func (mt *movieTitler) next(r *rand.Rand) string {
	p := mt.v.TitlePatterns[r.Intn(len(mt.v.TitlePatterns))]
	t := ""
	for i := 0; i < len(p); i++ {
		if p[i] == '%' && i+1 < len(p) {
			switch p[i+1] {
			case 'a':
				t += mt.v.TitleAdjectives[r.Intn(len(mt.v.TitleAdjectives))]
				i++
				continue
			case 'n':
				t += mt.v.TitleNouns[r.Intn(len(mt.v.TitleNouns))]
				i++
				continue
			}
		}
		t += string(p[i])
	}
	if mt.seen[t] {
		base := t
		k := mt.sequels[base]
		if k < 2 {
			k = 2
		}
		for mt.seen[base+" "+imdb.OrdinalSuffix(k)] {
			k++
		}
		mt.sequels[base] = k + 1
		t = base + " " + imdb.OrdinalSuffix(k)
	}
	mt.seen[t] = true
	return t
}

// Fingerprint returns a streaming CRC-64 digest over every row of every
// table in creation and insertion order. The determinism tests compare
// fingerprints instead of holding two million-row corpora side by side.
func Fingerprint(db *relational.Database) uint64 {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	for _, tn := range db.TableNames() {
		io.WriteString(h, tn)
		h.Write([]byte{0})
		db.Table(tn).Scan(func(_ int, row relational.Row) bool {
			for _, v := range row {
				io.WriteString(h, v.Render())
				h.Write([]byte{0x1f})
			}
			h.Write([]byte{0x1e})
			return true
		})
	}
	return h.Sum64()
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
