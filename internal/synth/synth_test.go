package synth

import (
	"math/rand"
	"testing"

	"qunits/internal/derive"
	"qunits/internal/imdb"
	"qunits/internal/search"
)

// TestMillionInstanceCorpusDeterministic is the subsystem's headline
// guarantee: ForInstances(1M) yields a corpus that (a) the expert
// catalog materializes into at least a million instances and (b) is
// bit-identical across runs with the same seed. Fingerprints keep the
// memory cost at one corpus per run instead of two held side by side.
func TestMillionInstanceCorpusDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("million-instance corpus generation skipped in -short mode")
	}
	cfg := ForInstances(1_000_000)
	u := MustGenerate(cfg)
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountInstances(cat)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1_000_000 {
		t.Fatalf("ForInstances(1M) materializes only %d instances", n)
	}
	if n > 1_300_000 {
		t.Fatalf("ForInstances(1M) overshoots wildly: %d instances", n)
	}
	est := EstimatedInstances(cfg)
	if ratio := float64(n) / float64(est); ratio < 0.97 || ratio > 1.03 {
		t.Errorf("estimate %d vs actual %d (ratio %.3f): instance model drifted", est, n, ratio)
	}
	fp := Fingerprint(u.DB)
	u = nil // allow the first corpus to be collected before regenerating

	again := MustGenerate(cfg)
	if fp2 := Fingerprint(again.DB); fp2 != fp {
		t.Fatalf("same seed produced different corpora: %x vs %x", fp, fp2)
	}

	cfg.Seed = 2
	other := MustGenerate(Config{Seed: 2, Persons: cfg.Persons, Movies: cfg.Movies,
		CastPerMovie: cfg.CastPerMovie, PopularityExponent: cfg.PopularityExponent})
	if Fingerprint(other.DB) == fp {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestCountInstancesMatchesEngine pins the arithmetic counter to the
// ground truth: the engine's post-materialization instance count over
// the same catalog.
func TestCountInstancesMatchesEngine(t *testing.T) {
	u := MustGenerate(ForInstances(8000))
	cat, err := derive.Expert{}.Derive(u.DB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CountInstances(cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := search.NewEngine(cat, search.Options{Synonyms: imdb.AttributeSynonyms()})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.InstanceCount(); got != want {
		t.Fatalf("CountInstances = %d but engine materialized %d", want, got)
	}
	if got := eng.InstanceCount(); got < 8000 {
		t.Fatalf("ForInstances(8000) materialized only %d", got)
	}
}

func TestGenerateKeepsUniverseContract(t *testing.T) {
	u := MustGenerate(Config{Seed: 3, Persons: 500, Movies: 260})
	for _, name := range []string{"george clooney", "julio iglesias"} {
		if _, ok := u.FindPerson(name); !ok {
			t.Errorf("missing famous person %q", name)
		}
	}
	for _, title := range []string{"star wars", "tomb raider"} {
		if _, ok := u.FindMovie(title); !ok {
			t.Errorf("missing famous movie %q", title)
		}
	}
	if u.Persons[0].Weight <= u.Persons[len(u.Persons)-1].Weight {
		t.Error("popularity not decreasing")
	}
	r := rand.New(rand.NewSource(4))
	head, tail := 0, 0
	for i := 0; i < 4000; i++ {
		switch u.SamplePerson(r).Name {
		case u.Persons[0].Name:
			head++
		case u.Persons[len(u.Persons)-1].Name:
			tail++
		}
	}
	if head <= tail || head < 20 {
		t.Errorf("sampler not zipfian: head %d, tail %d", head, tail)
	}
}

func TestPersonNamerUniqueAtScale(t *testing.T) {
	namer := newPersonNamer(9, imdb.Vocabulary())
	n := 60000 // several laps around the 9.2k composition space
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		name := namer.name(i)
		if seen[name] {
			t.Fatalf("duplicate person name %q at index %d", name, i)
		}
		seen[name] = true
	}
}

func TestForInstancesScalesMonotonically(t *testing.T) {
	small, large := ForInstances(10_000), ForInstances(500_000)
	if small.Movies >= large.Movies || small.Persons >= large.Persons {
		t.Fatalf("ForInstances not monotonic: %+v vs %+v", small, large)
	}
	tiny := ForInstances(1)
	if tiny.Movies < 20 || tiny.Persons < 20 {
		t.Fatalf("ForInstances(1) below the famous anchor floors: %+v", tiny)
	}
}

// TestUniversityCorpus proves the subsystem is not IMDb-specific: the
// scaled university schema works with the generic §4.1 deriver, and the
// instance counter stays exact on it.
func TestUniversityCorpus(t *testing.T) {
	cfg := UniversityConfig{Seed: 5, Departments: 10, Professors: 60,
		Courses: 150, Students: 400, EnrollPerStudent: 3}
	db, err := GenerateUniversity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("student").Len() != 400 || db.Table("course").Len() != 150 {
		t.Fatalf("cardinalities not honored: %d students, %d courses",
			db.Table("student").Len(), db.Table("course").Len())
	}
	db2, err := GenerateUniversity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(db) != Fingerprint(db2) {
		t.Fatal("university generation not deterministic")
	}
	cat, err := derive.FromSchema{K1: 3, K2: 2}.Derive(db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CountInstances(cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := search.NewEngine(cat, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.InstanceCount(); got != want {
		t.Fatalf("university CountInstances = %d but engine materialized %d", want, got)
	}
	if want == 0 {
		t.Fatal("university corpus materialized zero instances")
	}
}
