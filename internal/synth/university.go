package synth

import (
	"fmt"
	"math/rand"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

// UniversityConfig sizes the university corpus (the schema from
// examples/universitydb, scaled).
type UniversityConfig struct {
	Seed             int64
	Departments      int
	Professors       int
	Courses          int
	Students         int
	EnrollPerStudent int
}

// DefaultUniversityConfig is a mid-size campus: large enough that
// schema-derived qunits materialize tens of thousands of instances.
func DefaultUniversityConfig() UniversityConfig {
	return UniversityConfig{
		Seed:             1,
		Departments:      40,
		Professors:       1200,
		Courses:          6000,
		Students:         30000,
		EnrollPerStudent: 4,
	}
}

func (cfg UniversityConfig) withDefaults() UniversityConfig {
	d := DefaultUniversityConfig()
	if cfg.Departments <= 0 {
		cfg.Departments = d.Departments
	}
	if cfg.Professors <= 0 {
		cfg.Professors = d.Professors
	}
	if cfg.Courses <= 0 {
		cfg.Courses = d.Courses
	}
	if cfg.Students <= 0 {
		cfg.Students = d.Students
	}
	if cfg.EnrollPerStudent <= 0 {
		cfg.EnrollPerStudent = d.EnrollPerStudent
	}
	return cfg
}

var deptSubjects = []string{
	"computer science", "mathematics", "physics", "chemistry", "biology",
	"economics", "history", "philosophy", "linguistics", "psychology",
	"sociology", "anthropology", "statistics", "astronomy", "geology",
	"music", "architecture", "literature", "engineering", "medicine",
}

var courseTopics = []string{
	"databases", "information retrieval", "algebra", "calculus",
	"thermodynamics", "genetics", "macroeconomics", "logic", "syntax",
	"perception", "networks", "probability", "optics", "mechanics",
	"composition", "design", "poetics", "kinetics", "ethics", "topology",
	"compilers", "cryptography", "ecology", "rhetoric", "dynamics",
}

var courseLevels = []string{
	"introduction to", "intermediate", "advanced", "seminar in",
	"topics in", "foundations of", "applied", "computational",
}

// GenerateUniversity scales the examples/universitydb schema: the same
// five tables and foreign keys, populated to cfg's cardinalities,
// deterministic per seed. Pair it with derive.FromSchema to materialize
// a non-IMDb corpus of arbitrary size.
func GenerateUniversity(cfg UniversityConfig) (*relational.Database, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDatabase("university")
	db.MustCreateTable(relational.MustTableSchema("department", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "building", Kind: relational.KindString},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("professor", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: relational.KindInt},
	}, "id", []relational.ForeignKey{{Column: "dept_id", RefTable: "department"}}))
	db.MustCreateTable(relational.MustTableSchema("course", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "title", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "dept_id", Kind: relational.KindInt},
		{Name: "prof_id", Kind: relational.KindInt},
	}, "id", []relational.ForeignKey{
		{Column: "dept_id", RefTable: "department"},
		{Column: "prof_id", RefTable: "professor"},
	}))
	db.MustCreateTable(relational.MustTableSchema("student", []relational.Column{
		{Name: "id", Kind: relational.KindInt},
		{Name: "name", Kind: relational.KindString, Searchable: true, Label: true},
		{Name: "year", Kind: relational.KindInt},
	}, "id", nil))
	db.MustCreateTable(relational.MustTableSchema("enrollment", []relational.Column{
		{Name: "student_id", Kind: relational.KindInt},
		{Name: "course_id", Kind: relational.KindInt},
		{Name: "grade", Kind: relational.KindString},
	}, "", []relational.ForeignKey{
		{Column: "student_id", RefTable: "student"},
		{Column: "course_id", RefTable: "course"},
	}))

	v := imdb.Vocabulary()
	depT := db.Table("department")
	for i := 0; i < cfg.Departments; i++ {
		name := deptSubjects[i%len(deptSubjects)]
		if gen := i / len(deptSubjects); gen > 0 {
			name += " " + imdb.OrdinalSuffix(gen+1)
		}
		building := v.LastNames[r.Intn(len(v.LastNames))] + " hall"
		depT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)), relational.String(name), relational.String(building),
		})
	}
	// Professors and students share the arithmetic namer with the IMDb
	// corpus; distinct walk offsets keep the two populations from being
	// copies of each other.
	profNamer := newPersonNamer(cfg.Seed, v)
	profT := db.Table("professor")
	for i := 0; i < cfg.Professors; i++ {
		profT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)),
			relational.String(profNamer.name(i + len(v.FamousPeople))),
			relational.Int(int64(1 + r.Intn(cfg.Departments))),
		})
	}
	courseT := db.Table("course")
	seen := make(map[string]bool, cfg.Courses)
	sequels := make(map[string]int)
	for i := 0; i < cfg.Courses; i++ {
		title := courseLevels[r.Intn(len(courseLevels))] + " " + courseTopics[r.Intn(len(courseTopics))]
		if seen[title] {
			base := title
			k := sequels[base]
			if k < 2 {
				k = 2
			}
			for seen[base+" "+imdb.OrdinalSuffix(k)] {
				k++
			}
			sequels[base] = k + 1
			title = base + " " + imdb.OrdinalSuffix(k)
		}
		seen[title] = true
		courseT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)), relational.String(title),
			relational.Int(int64(1 + r.Intn(cfg.Departments))),
			relational.Int(int64(1 + r.Intn(cfg.Professors))),
		})
	}
	studentNamer := newPersonNamer(cfg.Seed^0x5deece66d, v)
	studentT := db.Table("student")
	for i := 0; i < cfg.Students; i++ {
		studentT.MustInsert(relational.Row{
			relational.Int(int64(i + 1)),
			relational.String(studentNamer.name(i + len(v.FamousPeople))),
			relational.Int(int64(1 + r.Intn(4))),
		})
	}
	enrT := db.Table("enrollment")
	grades := []string{"a", "b", "c", "d"}
	for i := 0; i < cfg.Students; i++ {
		n := 1 + r.Intn(2*cfg.EnrollPerStudent)
		seenC := make(map[int64]bool, n)
		for j := 0; j < n; j++ {
			// Square the uniform draw so enrollment is head-heavy: popular
			// courses dominate, matching the zipfian traffic the loadgen
			// workload assumes.
			c := int64(1 + int(float64(cfg.Courses)*r.Float64()*r.Float64()))
			if c > int64(cfg.Courses) {
				c = int64(cfg.Courses)
			}
			if seenC[c] {
				continue
			}
			seenC[c] = true
			enrT.MustInsert(relational.Row{
				relational.Int(int64(i + 1)), relational.Int(c),
				relational.String(grades[r.Intn(len(grades))]),
			})
		}
	}

	db.Tables(func(t *relational.Table) {
		for _, fk := range t.Schema().ForeignKeys {
			if err := t.CreateIndex(fk.Column); err != nil {
				panic(err) // unreachable: columns come from validated schemas
			}
		}
	})
	if err := db.ValidateForeignKeys(); err != nil {
		return nil, fmt.Errorf("synth: generated university fails FK validation: %w", err)
	}
	return db, nil
}
