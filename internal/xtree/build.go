package xtree

import (
	"strings"

	"qunits/internal/relational"
)

// BuildOptions controls the relational→tree rendering.
type BuildOptions struct {
	// EntityTables become top-level page elements (one element per row).
	// Empty means: every table with a primary key and a Label column.
	EntityTables []string
	// SkipColumns are column names never rendered (surrogate ids are
	// always skipped).
	SkipColumns []string
}

// Build renders the database as a document tree, the stand-in for the
// paper's XML conversion of an imdb.com crawl. Each entity row becomes an
// element whose children are: one leaf per scalar column, one leaf per
// resolved foreign key (labelled with the referenced table's name), and
// one nested element per referencing fact row (e.g. <cast> rows under
// their <movie>), themselves rendered one level deep.
func Build(db *relational.Database, opts BuildOptions) *Tree {
	entities := opts.EntityTables
	if len(entities) == 0 {
		for _, name := range db.TableNames() {
			s := db.Table(name).Schema()
			if s.PrimaryKey != "" && s.LabelColumn() != s.PrimaryKey {
				entities = append(entities, name)
			}
		}
	}
	skip := map[string]bool{}
	for _, c := range opts.SkipColumns {
		skip[c] = true
	}

	t := &Tree{}
	root := t.addNode(-1, db.Name(), "", relational.TupleRef{})

	for _, tableName := range entities {
		table := db.Table(tableName)
		if table == nil {
			continue
		}
		schema := table.Schema()
		table.Scan(func(id int, row relational.Row) bool {
			ref := relational.TupleRef{Table: tableName, Row: id}
			elem := t.addNode(root, tableName, "", ref)
			renderColumns(t, db, elem, schema, row, tableName, id, skip, ref)
			// Referencing fact rows, one level deep.
			for _, fact := range db.ReferencingRows(tableName, id) {
				factTable := db.Table(fact.Table)
				factSchema := factTable.Schema()
				factElem := t.addNode(elem, fact.Table, "", fact)
				renderColumns(t, db, factElem, factSchema, factTable.Row(fact.Row), fact.Table, fact.Row, skip, fact)
			}
			return true
		})
	}
	t.finish()
	return t
}

// renderColumns adds one leaf per scalar column and per resolved foreign
// key. The foreign key pointing back at the parent entity is skipped for
// fact rows nested under that entity (rendering "star wars" again under
// its own cast row is redundant, and doing so would hide the
// too-little/too-much demarcation behaviour the baselines are being
// evaluated for).
func renderColumns(t *Tree, db *relational.Database, elem int, schema *relational.TableSchema,
	row relational.Row, tableName string, rowID int, skip map[string]bool, ref relational.TupleRef) {

	parentRef, hasParent := t.Ref(t.Parent(elem))
	for ci, col := range schema.Columns {
		if skip[col.Name] || col.Name == schema.PrimaryKey {
			continue
		}
		if _, isFK := schema.ForeignKeyOn(col.Name); isFK {
			refTable, refRow, ok := db.Resolve(tableName, rowID, col.Name)
			if !ok {
				continue
			}
			if hasParent && parentRef.Table == refTable && parentRef.Row == refRow {
				continue
			}
			label := db.Label(relational.TupleRef{Table: refTable, Row: refRow})
			t.addNode(elem, refTable, label, relational.TupleRef{Table: refTable, Row: refRow})
			continue
		}
		if row[ci].IsNull() {
			continue
		}
		if strings.HasSuffix(col.Name, "_id") || col.Name == "id" {
			continue
		}
		t.addNode(elem, col.Name, row[ci].Render(), ref)
	}
}
