package xtree

import (
	"math/rand"
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/ir"
)

// bruteLCA computes the LCA by materializing ancestor sets.
func bruteLCA(t *Tree, a, b int) int {
	anc := map[int]bool{}
	for v := a; v != -1; v = t.Parent(v) {
		anc[v] = true
	}
	for v := b; v != -1; v = t.Parent(v) {
		if anc[v] {
			return v
		}
	}
	return 0
}

func TestLCAMatchesBruteForce(t *testing.T) {
	_, tree := testTree(t)
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		a := r.Intn(tree.Len())
		b := r.Intn(tree.Len())
		if got, want := tree.LCA(a, b), bruteLCA(tree, a, b); got != want {
			t.Fatalf("LCA(%d,%d) = %d, brute force = %d", a, b, got, want)
		}
	}
}

// bruteSLCA computes smallest LCAs by direct definition: nodes whose
// subtree covers all keywords and no child of which also covers all.
func bruteSLCA(t *Tree, sets [][]int) map[int]bool {
	covers := make([]map[int]bool, len(sets))
	for i, set := range sets {
		covers[i] = map[int]bool{}
		for _, n := range set {
			for v := n; v != -1; v = t.Parent(v) {
				covers[i][v] = true
			}
		}
	}
	all := map[int]bool{}
	for v := 0; v < t.Len(); v++ {
		ok := true
		for i := range sets {
			if !covers[i][v] {
				ok = false
				break
			}
		}
		if ok {
			all[v] = true
		}
	}
	smallest := map[int]bool{}
	for v := range all {
		hasCoveringChild := false
		for _, c := range t.Children(v) {
			if all[c] {
				hasCoveringChild = true
				break
			}
		}
		if !hasCoveringChild {
			smallest[v] = true
		}
	}
	return smallest
}

func TestSearchLCAMatchesBruteForce(t *testing.T) {
	_, tree := testTree(t)
	queries := []string{
		"star wars cast",
		"george clooney",
		"batman genre",
		"clooney wars",
		"drama",
	}
	for _, q := range queries {
		var sets [][]int
		for _, tok := range ir.ContentTokens(q) {
			if nodes := tree.Match(tok); len(nodes) > 0 {
				sets = append(sets, nodes)
			}
		}
		if len(sets) == 0 {
			continue
		}
		want := bruteSLCA(tree, sets)
		got := tree.SearchLCA(q, 0)
		if len(got) != len(want) {
			t.Fatalf("%q: SearchLCA found %d roots, brute force %d", q, len(got), len(want))
		}
		for _, res := range got {
			if !want[res.Root] {
				t.Fatalf("%q: root %d not a brute-force SLCA", q, res.Root)
			}
		}
	}
	_ = imdb.TableMovie
}

// Property: every MLCA result root is also an ancestor-or-equal of some
// SLCA root — meaningfulness only prunes or deepens, never invents
// unrelated roots covering fewer keywords.
func TestMLCARootsCoverAllKeywords(t *testing.T) {
	_, tree := testTree(t)
	for _, q := range []string{"star wars cast", "george clooney batman", "drama clooney"} {
		var sets [][]int
		for _, tok := range ir.ContentTokens(q) {
			if nodes := tree.Match(tok); len(nodes) > 0 {
				sets = append(sets, nodes)
			}
		}
		if len(sets) < 2 {
			continue
		}
		covers := bruteSLCA(tree, sets)
		// Build the full covering set (not just smallest).
		allCover := map[int]bool{}
		for v := range covers {
			for x := v; x != -1; x = tree.Parent(x) {
				allCover[x] = true
			}
		}
		for _, res := range tree.SearchMLCA(q, 0) {
			if !allCover[res.Root] {
				t.Errorf("%q: MLCA root %d does not cover all keywords", q, res.Root)
			}
		}
	}
}
