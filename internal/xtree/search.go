package xtree

import (
	"qunits/internal/relational"
)

// Result is one keyword-search answer: the subtree rooted at Root.
type Result struct {
	// Root is the LCA node demarcating the result.
	Root int
	// Tuples is the provenance of the returned subtree.
	Tuples []relational.TupleRef
	// Text is the flat rendering of the subtree.
	Text string
	// Score ranks results (higher is better): specificity first.
	Score float64
}

func (t *Tree) makeResult(root int) Result {
	return Result{
		Root:   root,
		Tuples: t.SubtreeTuples(root),
		Text:   t.SubtreeText(root),
		// Deeper roots are more specific; among equal depths, smaller
		// subtrees are tighter answers.
		Score: float64(t.depth[root]) + 1/float64(1+t.subSize[root]),
	}
}

// SearchLCA is the smallest-LCA baseline: return the deepest nodes whose
// subtrees cover every query keyword, most specific first. Tokens that
// match nothing are dropped; a query with no matches returns nil.
func (t *Tree) SearchLCA(query string, k int) []Result {
	sets := t.matchSets(query)
	if len(sets) == 0 {
		return nil
	}
	full := uint32(1)<<uint(len(sets)) - 1

	// Propagate keyword masks to ancestors.
	mask := make(map[int]uint32)
	for i, set := range sets {
		bit := uint32(1) << uint(i)
		for _, n := range set {
			for v := n; v != -1; v = t.parent[v] {
				if mask[v]&bit != 0 {
					break // this ancestor chain already has the bit
				}
				mask[v] |= bit
			}
		}
	}
	// Candidates: nodes covering all keywords...
	var candidates []int
	for v, m := range mask {
		if m == full {
			candidates = append(candidates, v)
		}
	}
	// ...that have no child also covering all keywords (smallest LCAs).
	isCand := make(map[int]bool, len(candidates))
	for _, v := range candidates {
		isCand[v] = true
	}
	var results []Result
	for _, v := range candidates {
		smallest := true
		for _, c := range t.children[v] {
			if isCand[c] {
				smallest = false
				break
			}
		}
		if smallest {
			results = append(results, t.makeResult(v))
		}
	}
	sortResults(results)
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// SearchMLCA is the meaningful-LCA baseline. For each instance of the
// rarest keyword, it pairs the instance with the nearest instance of
// every other keyword (the deepest pairwise LCA) and checks
// meaningfulness: no same-typed competitor may relate more closely. LCAs
// failing the check — the ones that merely happen to contain unrelated
// matches — are discarded, which is MLCA's improvement over plain LCA.
func (t *Tree) SearchMLCA(query string, k int) []Result {
	sets := t.matchSets(query)
	if len(sets) == 0 {
		return nil
	}
	if len(sets) == 1 {
		// Degenerate case: identical to LCA.
		return t.SearchLCA(query, k)
	}
	// Pivot on the rarest keyword.
	pivot := 0
	for i, s := range sets {
		if len(s) < len(sets[pivot]) {
			pivot = i
		}
	}

	seenRoot := map[int]bool{}
	var results []Result
	for _, x := range sets[pivot] {
		root := x
		meaningful := true
		for j, set := range sets {
			if j == pivot {
				continue
			}
			y, l := t.nearest(x, set)
			if y < 0 {
				meaningful = false
				break
			}
			// Symmetric check: x must also be (one of) the nearest
			// pivot-typed nodes to y. If some same-typed x' relates to y
			// strictly more closely, the pair (x, y) conflates unrelated
			// content and is not meaningful.
			if better, lx := t.nearestTyped(y, sets[pivot], t.tags[x]); better >= 0 && t.depth[lx] > t.depth[l] {
				meaningful = false
				break
			}
			if t.depth[l] < t.depth[root] {
				root = l
			} else {
				root = t.LCA(root, l)
			}
		}
		if !meaningful {
			continue
		}
		if seenRoot[root] {
			continue
		}
		seenRoot[root] = true
		results = append(results, t.makeResult(root))
	}
	sortResults(results)
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// nearest returns the node in set whose LCA with x is deepest, along with
// that LCA. Ties break toward the smaller node id.
func (t *Tree) nearest(x int, set []int) (node, lca int) {
	best, bestLCA, bestDepth := -1, -1, -1
	for _, y := range set {
		l := t.LCA(x, y)
		if d := t.depth[l]; d > bestDepth {
			best, bestLCA, bestDepth = y, l, d
		}
	}
	return best, bestLCA
}

// nearestTyped returns the node in set with the given tag whose LCA with
// x is deepest.
func (t *Tree) nearestTyped(x int, set []int, tag string) (node, lca int) {
	best, bestLCA, bestDepth := -1, -1, -1
	for _, y := range set {
		if t.tags[y] != tag {
			continue
		}
		l := t.LCA(x, y)
		if d := t.depth[l]; d > bestDepth {
			best, bestLCA, bestDepth = y, l, d
		}
	}
	return best, bestLCA
}
