// Package xtree provides the XML-tree view of a database and the two
// tree-based keyword-search baselines the paper evaluates against:
//
//   - LCA: smallest-LCA keyword search in the style of XRANK (Guo et al.,
//     SIGMOD 2003) — return the deepest elements whose subtree covers all
//     keywords.
//   - MLCA: meaningful LCA in the style of Schema-Free XQuery (Li, Yu &
//     Jagadish, VLDB 2004) — additionally require that each keyword node
//     pairs with the *nearest* instance of the other keyword's type, so
//     an LCA is "unique to the combination of queried nodes that connect
//     to it".
//
// The paper obtained its XML by converting a crawl of imdb.com; Build
// plays that role by rendering the relational database into a hierarchy
// of entity pages.
package xtree

import (
	"fmt"
	"sort"
	"strings"

	"qunits/internal/ir"
	"qunits/internal/relational"
)

// Tree is an immutable document tree. Node 0 is the root.
type Tree struct {
	tags     []string
	texts    []string
	parent   []int
	children [][]int
	depth    []int
	refs     []relational.TupleRef // provenance; Table=="" means none
	subSize  []int
	posting  map[string][]int
}

// builder-side append; subSize fixed up by finish().
func (t *Tree) addNode(parent int, tag, text string, ref relational.TupleRef) int {
	id := len(t.tags)
	t.tags = append(t.tags, tag)
	t.texts = append(t.texts, text)
	t.parent = append(t.parent, parent)
	t.children = append(t.children, nil)
	t.refs = append(t.refs, ref)
	if parent >= 0 {
		t.depth = append(t.depth, t.depth[parent]+1)
		t.children[parent] = append(t.children[parent], id)
	} else {
		t.depth = append(t.depth, 0)
	}
	return id
}

func (t *Tree) finish() {
	n := len(t.tags)
	t.subSize = make([]int, n)
	for i := n - 1; i >= 0; i-- {
		t.subSize[i] = 1
		for _, c := range t.children[i] {
			t.subSize[i] += t.subSize[c]
		}
	}
	t.posting = make(map[string][]int)
	for i := 0; i < n; i++ {
		seen := map[string]bool{}
		// Text tokens match the node itself.
		for _, tok := range ir.Tokenize(t.texts[i]) {
			if !seen[tok] {
				seen[tok] = true
				t.posting[tok] = append(t.posting[tok], i)
			}
		}
		// Tag tokens (and naive plural/singular variants) match the
		// element, so "movies" finds <movie> elements.
		for _, tok := range tagForms(t.tags[i]) {
			if !seen[tok] {
				seen[tok] = true
				t.posting[tok] = append(t.posting[tok], i)
			}
		}
	}
}

func tagForms(tag string) []string {
	var out []string
	for _, tok := range ir.Tokenize(strings.ReplaceAll(tag, "_", " ")) {
		out = append(out, tok)
		if strings.HasSuffix(tok, "s") {
			out = append(out, strings.TrimSuffix(tok, "s"))
		} else {
			out = append(out, tok+"s")
		}
	}
	return out
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.tags) }

// Tag returns a node's element name.
func (t *Tree) Tag(n int) string { return t.tags[n] }

// Text returns a node's own text content.
func (t *Tree) Text(n int) string { return t.texts[n] }

// Parent returns a node's parent, -1 for the root.
func (t *Tree) Parent(n int) int { return t.parent[n] }

// Children returns a node's children (shared slice; do not mutate).
func (t *Tree) Children(n int) []int { return t.children[n] }

// Depth returns a node's depth; the root has depth 0.
func (t *Tree) Depth(n int) int { return t.depth[n] }

// Ref returns the tuple a node was rendered from; ok is false for
// structural nodes.
func (t *Tree) Ref(n int) (relational.TupleRef, bool) {
	r := t.refs[n]
	return r, r.Table != ""
}

// SubtreeSize returns the number of nodes in the subtree rooted at n.
func (t *Tree) SubtreeSize(n int) int { return t.subSize[n] }

// Match returns the nodes matching a token (by text or tag), sorted.
func (t *Tree) Match(token string) []int {
	return t.posting[token]
}

// LCA returns the lowest common ancestor of two nodes.
func (t *Tree) LCA(a, b int) int {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// IsAncestor reports whether a is an ancestor of b (or equal).
func (t *Tree) IsAncestor(a, b int) bool {
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	return a == b
}

// SubtreeTuples returns the distinct provenance tuples in the subtree at
// n, in document order.
func (t *Tree) SubtreeTuples(n int) []relational.TupleRef {
	var out []relational.TupleRef
	seen := map[relational.TupleRef]bool{}
	var walk func(int)
	walk = func(v int) {
		if r, ok := t.Ref(v); ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
		for _, c := range t.children[v] {
			walk(c)
		}
	}
	walk(n)
	return out
}

// SubtreeText renders the subtree at n as flat text: every node's own
// text in document order.
func (t *Tree) SubtreeText(n int) string {
	var parts []string
	var walk func(int)
	walk = func(v int) {
		if t.texts[v] != "" {
			parts = append(parts, t.texts[v])
		}
		for _, c := range t.children[v] {
			walk(c)
		}
	}
	walk(n)
	return strings.Join(parts, " ")
}

// SubtreeXML serializes the subtree at n as indented XML — the form the
// paper's LCA/MLCA baselines present results in.
func (t *Tree) SubtreeXML(n int) string {
	var b strings.Builder
	var walk func(v, depth int)
	walk = func(v, depth int) {
		indent := strings.Repeat("  ", depth)
		if len(t.children[v]) == 0 {
			fmt.Fprintf(&b, "%s<%s>%s</%s>\n", indent, t.tags[v], xmlEscape(t.texts[v]), t.tags[v])
			return
		}
		fmt.Fprintf(&b, "%s<%s>", indent, t.tags[v])
		if t.texts[v] != "" {
			b.WriteString(xmlEscape(t.texts[v]))
		}
		b.WriteByte('\n')
		for _, c := range t.children[v] {
			walk(c, depth+1)
		}
		fmt.Fprintf(&b, "%s</%s>\n", indent, t.tags[v])
	}
	walk(n, 0)
	return b.String()
}

func xmlEscape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// matchSets resolves query tokens to node sets, dropping stopwords and
// unmatched tokens. It returns nil when nothing matches.
func (t *Tree) matchSets(query string) [][]int {
	var sets [][]int
	for _, tok := range ir.ContentTokens(query) {
		if nodes := t.posting[tok]; len(nodes) > 0 {
			sets = append(sets, nodes)
		}
	}
	return sets
}

// sortResults orders results by score descending with deterministic ties.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Root < rs[j].Root
	})
}
