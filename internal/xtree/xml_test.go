package xtree

import (
	"strings"
	"testing"
)

func TestSubtreeXML(t *testing.T) {
	u, tree := testTree(t)
	sw, _ := u.FindMovie("star wars")
	var elem = -1
	for _, c := range tree.Children(0) {
		if ref, ok := tree.Ref(c); ok && ref.Table == "movie" && ref.Row == sw.Row {
			elem = c
			break
		}
	}
	if elem < 0 {
		t.Fatal("no star wars element")
	}
	xml := tree.SubtreeXML(elem)
	for _, want := range []string{"<movie>", "</movie>", "<title>star wars</title>", "<cast>"} {
		if !strings.Contains(xml, want) {
			t.Errorf("XML missing %q:\n%s", want, xml[:min(400, len(xml))])
		}
	}
	// Well-formedness smoke check: equal open and close tag counts.
	if strings.Count(xml, "<movie>") != strings.Count(xml, "</movie>") {
		t.Error("unbalanced movie tags")
	}
	if strings.Count(xml, "<cast>") != strings.Count(xml, "</cast>") {
		t.Error("unbalanced cast tags")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a < b & c > d`); got != "a &lt; b &amp; c &gt; d" {
		t.Errorf("xmlEscape = %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
