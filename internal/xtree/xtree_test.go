package xtree

import (
	"strings"
	"testing"

	"qunits/internal/imdb"
	"qunits/internal/relational"
)

func testTree(t *testing.T) (*imdb.Universe, *Tree) {
	t.Helper()
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 100, Movies: 60, CastPerMovie: 4})
	tree := Build(u.DB, BuildOptions{EntityTables: []string{imdb.TablePerson, imdb.TableMovie}})
	return u, tree
}

func TestBuildShape(t *testing.T) {
	u, tree := testTree(t)
	if tree.Len() < u.DB.Table(imdb.TablePerson).Len()+u.DB.Table(imdb.TableMovie).Len() {
		t.Fatal("tree too small")
	}
	// Root has one child per entity row.
	wantTop := u.DB.Table(imdb.TablePerson).Len() + u.DB.Table(imdb.TableMovie).Len()
	if got := len(tree.Children(0)); got != wantTop {
		t.Fatalf("root children = %d, want %d", got, wantTop)
	}
	if tree.Depth(0) != 0 || tree.Parent(0) != -1 {
		t.Error("root malformed")
	}
	for _, c := range tree.Children(0) {
		if tree.Depth(c) != 1 {
			t.Fatal("depth wrong for top-level element")
		}
		if tag := tree.Tag(c); tag != imdb.TablePerson && tag != imdb.TableMovie {
			t.Fatalf("top-level tag = %q", tag)
		}
	}
}

func TestBuildMovieElementContents(t *testing.T) {
	u, tree := testTree(t)
	sw, _ := u.FindMovie("star wars")
	// Find the movie element for star wars.
	var elem = -1
	for _, c := range tree.Children(0) {
		if ref, ok := tree.Ref(c); ok && ref.Table == imdb.TableMovie && ref.Row == sw.Row {
			elem = c
			break
		}
	}
	if elem < 0 {
		t.Fatal("no element for star wars")
	}
	tags := map[string]int{}
	for _, c := range tree.Children(elem) {
		tags[tree.Tag(c)]++
	}
	for _, want := range []string{"title", "genre", "locations", "info", "cast", "crew"} {
		if tags[want] == 0 {
			t.Errorf("movie element missing <%s> (have %v)", want, tags)
		}
	}
	// The cast child must contain a person leaf, and not repeat the movie
	// title.
	for _, c := range tree.Children(elem) {
		if tree.Tag(c) != "cast" {
			continue
		}
		var hasPerson, hasMovie bool
		for _, g := range tree.Children(c) {
			if tree.Tag(g) == "person" {
				hasPerson = true
			}
			if tree.Tag(g) == "movie" {
				hasMovie = true
			}
		}
		if !hasPerson {
			t.Error("cast element lacks person leaf")
		}
		if hasMovie {
			t.Error("cast element redundantly repeats parent movie")
		}
		break
	}
}

func TestSubtreeSizeConsistent(t *testing.T) {
	_, tree := testTree(t)
	// Root subtree size must equal the node count.
	if tree.SubtreeSize(0) != tree.Len() {
		t.Fatalf("SubtreeSize(root) = %d, Len = %d", tree.SubtreeSize(0), tree.Len())
	}
	// Each node: 1 + sum of children sizes.
	for v := 0; v < tree.Len(); v += 53 {
		want := 1
		for _, c := range tree.Children(v) {
			want += tree.SubtreeSize(c)
		}
		if tree.SubtreeSize(v) != want {
			t.Fatalf("SubtreeSize(%d) = %d, want %d", v, tree.SubtreeSize(v), want)
		}
	}
}

func TestLCAProperties(t *testing.T) {
	_, tree := testTree(t)
	// LCA(x,x) == x; LCA with root is root; LCA symmetric; LCA is
	// ancestor of both.
	nodes := []int{1, 5, tree.Len() / 2, tree.Len() - 1}
	for _, a := range nodes {
		if tree.LCA(a, a) != a {
			t.Errorf("LCA(%d,%d) != self", a, a)
		}
		if tree.LCA(a, 0) != 0 {
			t.Error("LCA with root not root")
		}
		for _, b := range nodes {
			l := tree.LCA(a, b)
			if l != tree.LCA(b, a) {
				t.Error("LCA not symmetric")
			}
			if !tree.IsAncestor(l, a) || !tree.IsAncestor(l, b) {
				t.Error("LCA not an ancestor of both")
			}
		}
	}
}

func TestIsAncestor(t *testing.T) {
	_, tree := testTree(t)
	c := tree.Children(0)[0]
	if !tree.IsAncestor(0, c) {
		t.Error("root not ancestor of child")
	}
	if tree.IsAncestor(c, 0) {
		t.Error("child is ancestor of root")
	}
	if !tree.IsAncestor(c, c) {
		t.Error("node not ancestor of itself")
	}
}

func TestSearchLCASingleEntity(t *testing.T) {
	_, tree := testTree(t)
	res := tree.SearchLCA("george clooney", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0]
	// The paper's critique: LCA returns the smallest covering node — for
	// a name query that is just the name leaf, providing nothing beyond
	// the query.
	if !strings.Contains(strings.ToLower(top.Text), "clooney") {
		t.Errorf("top text %q lacks the keyword", top.Text)
	}
	if tree.SubtreeSize(top.Root) > 3 {
		t.Errorf("smallest LCA should be (nearly) a leaf, size = %d", tree.SubtreeSize(top.Root))
	}
}

func TestSearchLCACoversAllKeywords(t *testing.T) {
	_, tree := testTree(t)
	res := tree.SearchLCA("star wars cast", 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res[:1] {
		text := strings.ToLower(tree.SubtreeText(r.Root))
		for _, kw := range []string{"star", "wars", "cast"} {
			// Tag matches don't appear in text; check tags too.
			if strings.Contains(text, kw) {
				continue
			}
			found := false
			var walk func(int)
			walk = func(v int) {
				if found {
					return
				}
				for _, f := range tagForms(tree.Tag(v)) {
					if f == kw {
						found = true
						return
					}
				}
				for _, c := range tree.Children(v) {
					walk(c)
				}
			}
			walk(r.Root)
			if !found {
				t.Errorf("result subtree misses keyword %q", kw)
			}
		}
	}
}

func TestSearchLCANoMatch(t *testing.T) {
	_, tree := testTree(t)
	if res := tree.SearchLCA("zzzzz qqqqq", 5); res != nil {
		t.Errorf("results for nonsense: %v", res)
	}
}

func TestSearchLCASmallestProperty(t *testing.T) {
	_, tree := testTree(t)
	res := tree.SearchLCA("star wars", 10)
	// No result root may be an ancestor of another result root.
	for i, a := range res {
		for j, b := range res {
			if i != j && a.Root != b.Root && tree.IsAncestor(a.Root, b.Root) {
				t.Fatalf("result %d (%d) is ancestor of result %d (%d)", i, a.Root, j, b.Root)
			}
		}
	}
}

func TestSearchMLCAMoreSelectiveThanLCA(t *testing.T) {
	_, tree := testTree(t)
	q := "george clooney star wars"
	lca := tree.SearchLCA(q, 0)
	mlca := tree.SearchMLCA(q, 0)
	if len(mlca) > len(lca)+5 {
		t.Errorf("MLCA returned %d results, LCA %d; expected MLCA ⊆-ish", len(mlca), len(lca))
	}
	// Every MLCA root must genuinely relate its keywords: no root may be
	// the document root when deeper relationships exist.
	if len(mlca) > 0 && mlca[0].Root == 0 && len(lca) > 0 && lca[0].Root != 0 {
		t.Error("MLCA returned the document root while LCA found something deeper")
	}
}

func TestSearchMLCASingleKeywordDegenerates(t *testing.T) {
	_, tree := testTree(t)
	a := tree.SearchLCA("clooney", 5)
	b := tree.SearchMLCA("clooney", 5)
	if len(a) != len(b) {
		t.Fatalf("single-keyword MLCA differs from LCA: %d vs %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Root != b[i].Root {
			t.Fatal("single-keyword MLCA ranking differs")
		}
	}
}

func TestSearchMLCANoMatch(t *testing.T) {
	_, tree := testTree(t)
	if res := tree.SearchMLCA("qqqq zzzz", 3); res != nil {
		t.Error("MLCA matched nonsense")
	}
}

func TestResultProvenance(t *testing.T) {
	u, tree := testTree(t)
	res := tree.SearchLCA("star wars cast", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if len(r.Tuples) == 0 {
			t.Error("result with no provenance")
		}
		for _, ref := range r.Tuples {
			if u.DB.Table(ref.Table) == nil {
				t.Errorf("provenance names missing table %q", ref.Table)
			}
		}
	}
}

func TestMatchIncludesTagForms(t *testing.T) {
	_, tree := testTree(t)
	if len(tree.Match("movie")) == 0 || len(tree.Match("movies")) == 0 {
		t.Error("tag forms not matchable")
	}
	if len(tree.Match("cast")) == 0 {
		t.Error("cast tag not matchable")
	}
}

func TestBuildDefaultEntityTables(t *testing.T) {
	u := imdb.MustGenerate(imdb.Config{Seed: 5, Persons: 30, Movies: 20})
	tree := Build(u.DB, BuildOptions{})
	// Defaults pick every PK+label table: person, movie, genre,
	// locations, info, company, keyword, award.
	tags := map[string]bool{}
	for _, c := range tree.Children(0) {
		tags[tree.Tag(c)] = true
	}
	for _, want := range []string{"person", "movie", "genre", "company"} {
		if !tags[want] {
			t.Errorf("default build missing top-level %q", want)
		}
	}
	_ = relational.TupleRef{}
}
