#!/bin/sh
# smoke.sh boots qunitsd on a scratch port and exercises the HTTP
# surface end to end with curl: /healthz, /v1/search (single + batch +
# explain + error envelope), /v1/feedback, /v1/instances/{id}, and the
# legacy /search alias. It is the CI smoke test (`make smoke`) — fast,
# hermetic, and loud on failure.
set -eu

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/qunitsd"
LOG="$(mktemp)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    rm -f "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke: FAIL: $1" >&2
    echo "--- qunitsd log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# jsonget FILTER JSON: extract a field with python (always present in CI
# images; avoids a jq dependency).
jsonget() {
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {"d": d}))' "$1"
}

echo "smoke: building qunitsd"
go build -o "$BIN" ./cmd/qunitsd

echo "smoke: starting qunitsd on :$PORT"
"$BIN" -addr "127.0.0.1:$PORT" -persons 120 -movies 80 >"$LOG" 2>&1 &
PID=$!

# Wait for readiness (engine build takes a moment).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server did not become healthy"
    kill -0 "$PID" 2>/dev/null || fail "server exited early"
    sleep 0.2
done

echo "smoke: GET /healthz"
curl -fsS "$BASE/healthz" | jsonget 'd["status"]' | grep -qx ok || fail "healthz not ok"

echo "smoke: POST /v1/search (single)"
OUT=$(curl -fsS -d '{"query":"star wars cast","k":3,"explain":true}' "$BASE/v1/search")
echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "single search top result: $OUT"
echo "$OUT" | jsonget 'd["explain"]["template"]' | grep -q 'movie.title' || fail "explain missing: $OUT"
TOP_ID=$(echo "$OUT" | jsonget 'd["results"][0]["id"]')

echo "smoke: POST /v1/search (batch with per-item error)"
OUT=$(curl -fsS -d '{"queries":[{"query":"george clooney","k":2},{"query":""}]}' "$BASE/v1/search")
echo "$OUT" | jsonget 'len(d["items"])' | grep -qx 2 || fail "batch item count: $OUT"
echo "$OUT" | jsonget 'd["items"][1]["error"]["code"]' | grep -qx invalid_argument || fail "batch per-item error: $OUT"

echo "smoke: POST /v1/search (error envelope)"
OUT=$(curl -sS -d '{"query":"x","filter":{"definitions":["nope"]}}' "$BASE/v1/search")
echo "$OUT" | jsonget 'd["error"]["code"]' | grep -qx unknown_definition || fail "error envelope: $OUT"

echo "smoke: POST /v1/feedback"
OUT=$(curl -fsS -d "{\"instance_id\":$(printf '%s' "$TOP_ID" | python3 -c 'import json,sys; print(json.dumps(sys.stdin.read()))'),\"positive\":true}" "$BASE/v1/feedback")
echo "$OUT" | jsonget 'd["utility"] > 0' | grep -qx True || fail "feedback: $OUT"

echo "smoke: GET /v1/instances/{id}"
ENC_ID=$(printf '%s' "$TOP_ID" | python3 -c 'import sys,urllib.parse; print(urllib.parse.quote(sys.stdin.read()))')
OUT=$(curl -fsS "$BASE/v1/instances/$ENC_ID")
echo "$OUT" | jsonget 'd["definition"]' | grep -qx movie-cast || fail "instance fetch: $OUT"

echo "smoke: GET /search (legacy alias)"
OUT=$(curl -fsS "$BASE/search?q=star+wars+cast&k=2")
echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "legacy search: $OUT"

echo "smoke: GET /stats"
OUT=$(curl -fsS "$BASE/stats")
echo "$OUT" | jsonget 'd["feedbacks"]' | grep -qx 1 || fail "stats feedbacks: $OUT"

echo "smoke: graceful shutdown (SIGTERM)"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server did not drain after SIGTERM"
    sleep 0.1
done
wait "$PID" 2>/dev/null || true
grep -q "drained" "$LOG" || fail "no graceful-shutdown log line"
PID=

echo "smoke: PASS"
