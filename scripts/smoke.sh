#!/bin/sh
# smoke.sh boots qunitsd on a scratch port and exercises the HTTP
# surface end to end with curl: /healthz, /v1/search (single + batch +
# explain + error envelope), /v1/feedback, /v1/instances/{id}, and the
# legacy /search alias — then the snapshot cycle: add an instance over
# /v1, snapshot via SIGTERM, restart from the snapshot, and assert the
# added instance is still searchable — then the mmap cycle: snapshot a
# synth corpus, reboot with -mmap, and require the mapped path to
# engage, serve byte-identical search responses, accept live mutations,
# and boot far under the fresh-build time — then the compaction cycle:
# accumulate tombstones over /v1/instances, POST /v1/compact while a
# background search loop keeps hitting the server, and assert /stats
# reclamation plus unchanged results — then the cluster cycle: boot a
# coordinator over two partition nodes (a WAL-writing primary and a
# tailing follower) next to an identically-seeded single node, drive
# searches, a live instance add, feedback, and a compaction through
# both stacks, and diff the scrubbed /v1 responses byte for byte. It is
# the CI smoke test: `make smoke` runs the basic flow, `make
# snapshot-smoke` the snapshot flow, `make mmap-smoke` the mmap flow,
# `make compact-smoke` the
# compact-under-load flow, `make cluster-smoke` the cluster flow,
# `make loadgen-smoke` the load-generator flow (cmd/loadgen against a
# synth corpus, single node and cluster, gated by benchcheck -load),
# `make eval-smoke` the relevance-gate flow (cmd/eval offline on the
# committed IMDb golden set, then online over /v1/search against a
# qunitsd serving the same corpus, with the two reports required to be
# byte-identical), `scripts/smoke.sh all` everything. Fast, hermetic,
# and loud on failure.
#
# Usage: smoke.sh [basic|snapshot|mmap|compact|cluster|loadgen|eval|all]   (default: all)
set -eu

MODE="${1:-all}"
case "$MODE" in basic|snapshot|mmap|compact|cluster|loadgen|eval|all) ;; *)
    echo "smoke: unknown mode $MODE (want basic|snapshot|mmap|compact|cluster|loadgen|eval|all)" >&2; exit 2 ;;
esac

# pick_ports N: print N distinct free TCP ports, one per line. All N
# sockets are held open simultaneously while being picked, so the
# kernel cannot hand the same port out twice; they are closed only on
# exit, immediately before the servers bind. (The old scheme — a fixed
# 18080 plus offsets — collided with anything already listening there,
# including a concurrent smoke run.)
pick_ports() {
    python3 -c '
import socket, sys
socks = [socket.socket() for _ in range(int(sys.argv[1]))]
for s in socks:
    s.bind(("127.0.0.1", 0))
for s in socks:
    print(s.getsockname()[1])
' "$1"
}

if [ -n "${SMOKE_PORT:-}" ]; then
    # Explicit override keeps the old deterministic layout for debugging.
    PORT="$SMOKE_PORT"
    SPORT=$((PORT + 1)); P0PORT=$((PORT + 2)); P1PORT=$((PORT + 3)); COPORT=$((PORT + 4))
    LPORT=$((PORT + 5)); LP0PORT=$((PORT + 6)); LP1PORT=$((PORT + 7)); LCOPORT=$((PORT + 8))
else
    # shellcheck disable=SC2046
    set -- $(pick_ports 9)
    PORT=$1; SPORT=$2; P0PORT=$3; P1PORT=$4; COPORT=$5
    LPORT=$6; LP0PORT=$7; LP1PORT=$8; LCOPORT=$9
fi
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/qunitsd"
LOG="$(mktemp)"
SNAP="$(mktemp -u).snap"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    for p in ${CPIDS:-}; do kill "$p" 2>/dev/null || true; done
    for p in ${CPIDS:-}; do wait "$p" 2>/dev/null || true; done
    rm -f "$BIN" "$LOG" "$SNAP" "$SNAP.tmp" "$LOG.searchfail"
    [ -n "${CLOGS:-}" ] && rm -rf "$CLOGS"
    [ -n "${LGLOGS:-}" ] && rm -rf "$LGLOGS"
    [ -n "${EVBIN:-}" ] && rm -f "$EVBIN"
    [ -n "${EVDIR:-}" ] && rm -rf "$EVDIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke: FAIL: $1" >&2
    echo "--- qunitsd log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# jsonget FILTER JSON: extract a field with python (always present in CI
# images; avoids a jq dependency).
jsonget() {
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {"d": d}))' "$1"
}

# scrub: drop took_us everywhere and re-serialize with sorted keys, so
# two responses that differ only in timing compare equal. Shared by the
# mmap parity diff and the cluster byte-for-byte diff.
scrub() {
    python3 -c '
import json, sys
def walk(x):
    if isinstance(x, dict):
        x.pop("took_us", None)
        for v in x.values(): walk(v)
    elif isinstance(x, list):
        for v in x: walk(v)
d = json.load(sys.stdin); walk(d); print(json.dumps(d, sort_keys=True))'
}

# boot_secs PATTERN: parse the Go duration ("123ms", "1.2s", ...) out of
# the first log line matching PATTERN and print it as seconds.
boot_secs() {
    python3 -c '
import re, sys
for line in open(sys.argv[2]):
    if re.search(sys.argv[1], line):
        units = {"h": 3600, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "m": 60, "s": 1}
        total = 0.0
        m = re.search(r" in ([0-9.a-zµ]+) ", line)
        if not m:
            continue
        for num, unit in re.findall(r"([0-9.]+)(h|ms|µs|us|ns|m|s)", m.group(1)):
            total += float(num) * units.get(unit.replace("µs", "us"), 1e-6)
        print("%.6f" % total)
        sys.exit(0)
sys.exit(1)
' "$1" "$LOG"
}

# start_server EXTRA_FLAGS…: boot qunitsd and wait for /healthz.
start_server() {
    "$BIN" -addr "127.0.0.1:$PORT" -persons 120 -movies 80 "$@" >"$LOG" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server did not become healthy"
        kill -0 "$PID" 2>/dev/null || fail "server exited early"
        sleep 0.2
    done
}

# stop_server: SIGTERM and wait for the graceful drain.
stop_server() {
    kill -TERM "$PID"
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server did not drain after SIGTERM"
        sleep 0.1
    done
    wait "$PID" 2>/dev/null || true
    grep -q "drained" "$LOG" || fail "no graceful-shutdown log line"
    PID=
}

echo "smoke: building qunitsd"
go build -o "$BIN" ./cmd/qunitsd

if [ "$MODE" = "basic" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd on :$PORT"
    start_server

    echo "smoke: GET /healthz"
    curl -fsS "$BASE/healthz" | jsonget 'd["status"]' | grep -qx ok || fail "healthz not ok"

    echo "smoke: POST /v1/search (single)"
    OUT=$(curl -fsS -d '{"query":"star wars cast","k":3,"explain":true}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "single search top result: $OUT"
    echo "$OUT" | jsonget 'd["explain"]["template"]' | grep -q 'movie.title' || fail "explain missing: $OUT"
    TOP_ID=$(echo "$OUT" | jsonget 'd["results"][0]["id"]')

    echo "smoke: POST /v1/search (batch with per-item error)"
    OUT=$(curl -fsS -d '{"queries":[{"query":"george clooney","k":2},{"query":""}]}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'len(d["items"])' | grep -qx 2 || fail "batch item count: $OUT"
    echo "$OUT" | jsonget 'd["items"][1]["error"]["code"]' | grep -qx invalid_argument || fail "batch per-item error: $OUT"

    echo "smoke: POST /v1/search (error envelope)"
    OUT=$(curl -sS -d '{"query":"x","filter":{"definitions":["nope"]}}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["error"]["code"]' | grep -qx unknown_definition || fail "error envelope: $OUT"

    echo "smoke: POST /v1/feedback"
    OUT=$(curl -fsS -d "{\"instance_id\":$(printf '%s' "$TOP_ID" | python3 -c 'import json,sys; print(json.dumps(sys.stdin.read()))'),\"positive\":true}" "$BASE/v1/feedback")
    echo "$OUT" | jsonget 'd["utility"] > 0' | grep -qx True || fail "feedback: $OUT"

    echo "smoke: GET /v1/instances/{id}"
    ENC_ID=$(printf '%s' "$TOP_ID" | python3 -c 'import sys,urllib.parse; print(urllib.parse.quote(sys.stdin.read()))')
    OUT=$(curl -fsS "$BASE/v1/instances/$ENC_ID")
    echo "$OUT" | jsonget 'd["definition"]' | grep -qx movie-cast || fail "instance fetch: $OUT"

    echo "smoke: GET /search (legacy alias)"
    OUT=$(curl -fsS "$BASE/search?q=star+wars+cast&k=2")
    echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "legacy search: $OUT"

    echo "smoke: GET /stats"
    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["feedbacks"]' | grep -qx 1 || fail "stats feedbacks: $OUT"

    echo "smoke: graceful shutdown (SIGTERM)"
    stop_server
fi

if [ "$MODE" = "snapshot" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd with -snapshot (fresh build)"
    start_server -snapshot "$SNAP"

    echo "smoke: POST /v1/instances (live add)"
    OUT=$(curl -fsS -d '{"definition":"movie-cast","anchor":"smoke snapshot qunit"}' "$BASE/v1/instances")
    echo "$OUT" | jsonget 'd["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "instance create: $OUT"

    echo "smoke: added instance is searchable without restart"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "live search after add: $OUT"

    echo "smoke: SIGTERM writes the snapshot"
    stop_server
    grep -q "snapshot written" "$LOG" || fail "no snapshot-written log line"
    [ -s "$SNAP" ] || fail "snapshot file missing or empty"

    echo "smoke: restarting from the snapshot"
    start_server -snapshot "$SNAP"
    grep -q "loaded from snapshot" "$LOG" || fail "server did not load the snapshot"

    echo "smoke: added instance survived the restart"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "search after restart: $OUT"
    OUT=$(curl -fsS "$BASE/v1/instances/movie-cast:smoke%20snapshot%20qunit")
    echo "$OUT" | jsonget 'd["definition"]' | grep -qx movie-cast || fail "instance fetch after restart: $OUT"

    echo "smoke: DELETE /v1/instances/{id}"
    OUT=$(curl -fsS -X DELETE "$BASE/v1/instances/movie-cast:smoke%20snapshot%20qunit")
    echo "$OUT" | jsonget 'd["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "instance delete: $OUT"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget '[r["id"] for r in d["results"]].count("movie-cast:smoke snapshot qunit")' | grep -qx 0 || fail "deleted instance still served: $OUT"

    stop_server
fi

if [ "$MODE" = "mmap" ] || [ "$MODE" = "all" ]; then
    # The mmap flow proves the tentpole end to end: build a snapshot of
    # a synth corpus, reboot from it with and without -mmap, and require
    # (a) the mapped path actually engages, (b) scrubbed /v1/search
    # bytes are identical between the copying and mapped engines, and
    # (c) the mapped boot is O(snapshot-load), far below the fresh
    # build — the page-in work the mapping defers. The cache is off so
    # every diffed response really comes from the engine.
    MFLAGS="-instances 8000 -cache -1"
    rm -f "$SNAP" # the snapshot flow may have left its (smaller) snapshot here

    echo "smoke: fresh build on an 8000-instance synth corpus (writes snapshot)"
    # shellcheck disable=SC2086
    start_server -snapshot "$SNAP" $MFLAGS
    BUILD_SECS=$(boot_secs "engine ready in") || fail "no engine-ready log line"
    stop_server
    grep -q "snapshot written" "$LOG" || fail "no snapshot-written log line"
    [ -s "$SNAP" ] || fail "snapshot file missing or empty"

    mmap_probe() {
        curl -fsS -d '{"query":"star wars cast","k":5}' "$BASE/v1/search" | scrub &&
        curl -fsS -d '{"query":"george clooney","k":10,"explain":true}' "$BASE/v1/search" | scrub &&
        curl -fsS -d '{"queries":[{"query":"star wars","k":4},{"query":"summary keywords","k":3}]}' "$BASE/v1/search" | scrub
    }

    echo "smoke: copying restart from the snapshot"
    # shellcheck disable=SC2086
    start_server -snapshot "$SNAP" $MFLAGS
    grep -q "loaded from snapshot" "$LOG" || fail "copying restart did not load the snapshot"
    COPY_OUT=$(mmap_probe) || fail "copying-engine probe searches failed"
    stop_server

    echo "smoke: mapped restart from the snapshot (-mmap)"
    # shellcheck disable=SC2086
    start_server -snapshot "$SNAP" $MFLAGS -mmap
    grep -q "loaded from mapped snapshot" "$LOG" || fail "-mmap did not take the mapped path"
    MAP_SECS=$(boot_secs "loaded from mapped snapshot") || fail "no mapped-boot log line"

    echo "smoke: mapped engine serves byte-identical search responses"
    MAP_OUT=$(mmap_probe) || fail "mapped-engine probe searches failed"
    [ "$COPY_OUT" = "$MAP_OUT" ] || fail "mapped responses differ from copying responses
copy: $COPY_OUT
mmap: $MAP_OUT"

    echo "smoke: mapped engine accepts live mutations (copy-on-write)"
    OUT=$(curl -fsS -d '{"definition":"movie-cast","anchor":"mmap smoke qunit"}' "$BASE/v1/instances")
    echo "$OUT" | jsonget 'd["id"]' | grep -qx 'movie-cast:mmap smoke qunit' || fail "instance create on mapped engine: $OUT"
    OUT=$(curl -fsS -d '{"query":"mmap smoke qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["id"]' | grep -qx 'movie-cast:mmap smoke qunit' || fail "search after add on mapped engine: $OUT"
    stop_server

    # The O(1)-boot gate: a mapped boot skips derivation, indexing, and
    # the posting-blob copy, so it must come in well under the fresh
    # build of the same corpus (typical ratio is ~0.45 at this scale,
    # where per-instance metadata decode dominates; the blob-copy
    # saving grows with the corpus). The 0.7 bound catches the mapped
    # path silently degrading into a rebuild, not CI jitter.
    echo "smoke: mapped boot ${MAP_SECS}s vs fresh build ${BUILD_SECS}s"
    awk -v m="$MAP_SECS" -v b="$BUILD_SECS" 'BEGIN { exit (m + 0 < b * 0.7) ? 0 : 1 }' \
        || fail "mapped boot ${MAP_SECS}s is not well under the fresh build ${BUILD_SECS}s"
fi

if [ "$MODE" = "compact" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd with -compact-ratio"
    start_server -compact-ratio 0.5

    echo "smoke: accumulating tombstones over /v1/instances"
    for i in 1 2 3 4; do
        curl -fsS -d "{\"definition\":\"movie-cast\",\"anchor\":\"compact smoke qunit $i\"}" "$BASE/v1/instances" >/dev/null || fail "instance create $i"
    done
    for i in 1 2 3; do
        curl -fsS -X DELETE "$BASE/v1/instances/movie-cast:compact%20smoke%20qunit%20$i" >/dev/null || fail "instance delete $i"
    done
    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["index_tombstones"] >= 3' | grep -qx True || fail "tombstones not accumulated: $OUT"

    BEFORE=$(curl -fsS -d '{"query":"star wars cast","k":3}' "$BASE/v1/search" | jsonget 'd["results"][0]["id"]')

    echo "smoke: POST /v1/compact under live search load"
    FAILMARK="$LOG.searchfail"
    rm -f "$FAILMARK"
    ( i=0; while [ "$i" -lt 40 ]; do
          # A fresh query text each iteration: distinct cache keys, so
          # every request really reaches the engine while the pass runs
          # (a repeated query would be served from the result cache and
          # prove nothing about search availability).
          curl -fsS -d "{\"query\":\"star wars cast $i\",\"k\":3}" "$BASE/v1/search" >/dev/null 2>&1 || { touch "$FAILMARK"; break; }
          i=$((i + 1))
      done ) &
    LOADPID=$!
    OUT=$(curl -fsS -X POST "$BASE/v1/compact")
    echo "$OUT" | jsonget 'd["reclaimed_slots"] >= 3' | grep -qx True || fail "compact reclaimed too little: $OUT"
    wait "$LOADPID"
    [ ! -e "$FAILMARK" ] || fail "a search failed while compaction ran"

    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["index_tombstones"]' | grep -qx 0 || fail "tombstones survived compaction: $OUT"
    echo "$OUT" | jsonget 'd["compactions"] >= 1' | grep -qx True || fail "compaction counter missing: $OUT"
    echo "$OUT" | jsonget 'd["slots_reclaimed"] >= 3' | grep -qx True || fail "reclaimed counter missing: $OUT"

    echo "smoke: results unchanged across compaction"
    AFTER=$(curl -fsS -d '{"query":"star wars cast","k":3}' "$BASE/v1/search" | jsonget 'd["results"][0]["id"]')
    [ "$BEFORE" = "$AFTER" ] || fail "top result changed across compaction: $BEFORE vs $AFTER"

    echo "smoke: surviving live-added instance still served after compaction"
    OUT=$(curl -fsS -d '{"query":"compact smoke qunit","k":5}' "$BASE/v1/search")
    echo "$OUT" | jsonget '[r["id"] for r in d["results"]].count("movie-cast:compact smoke qunit 4")' | grep -qx 1 || fail "survivor lost across compaction: $OUT"

    stop_server
fi

if [ "$MODE" = "cluster" ] || [ "$MODE" = "all" ]; then
    # Four nodes: a single-node control plus a 2-partition cluster
    # (primary + WAL follower) behind a coordinator. All engine nodes
    # share the universe seed and shard geometry, and every node runs
    # with the result cache off so the scrubbed /v1 bytes can be diffed
    # directly (a cache hit flips the "cached" field).
    CLOGS="$(mktemp -d)"
    CWAL="$CLOGS/mutations.wal"
    SBASE="http://127.0.0.1:$SPORT"; COBASE="http://127.0.0.1:$COPORT"
    GEN="-persons 120 -movies 80 -shards 4 -cache -1"
    CPIDS=""

    cluster_fail() {
        echo "smoke: FAIL: $1" >&2
        for f in "$CLOGS"/*.log; do
            echo "--- $f ---" >&2
            cat "$f" >&2
        done
        exit 1
    }

    # start_node NAME PORT FLAGS…: boot one cluster node, wait for
    # /healthz, remember its pid for cleanup.
    start_node() {
        name=$1; port=$2; shift 2
        # shellcheck disable=SC2086
        "$BIN" -addr "127.0.0.1:$port" $GEN "$@" >"$CLOGS/$name.log" 2>&1 &
        CPIDS="$CPIDS $!"
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            [ "$i" -gt 100 ] && cluster_fail "$name did not become healthy"
            sleep 0.2
        done
    }

    # diff_post LABEL SINGLE_URL CLUSTER_URL BODY: drive one POST
    # through both stacks and require identical scrubbed bytes.
    diff_post() {
        label=$1; su=$2; cu=$3; body=$4
        s_out=$(curl -sS -d "$body" "$su" | scrub) || cluster_fail "$label: single-node request failed"
        c_out=$(curl -sS -d "$body" "$cu" | scrub) || cluster_fail "$label: cluster request failed"
        [ "$s_out" = "$c_out" ] || cluster_fail "$label: responses differ
single:  $s_out
cluster: $c_out"
    }

    diff_search() {
        diff_post "search $1" "$SBASE/v1/search" "$COBASE/v1/search" "$1"
    }

    # wait_converged: poll the coordinator's topology until every
    # partition reports lag 0 (the follower has replayed the WAL).
    wait_converged() {
        i=0
        until curl -fsS "$COBASE/v1/cluster" | jsonget 'max(p["lag"] for p in d["partitions"])' | grep -qx 0; do
            i=$((i + 1))
            [ "$i" -gt 100 ] && cluster_fail "followers did not converge"
            sleep 0.1
        done
    }

    echo "smoke: starting single-node control on :$SPORT"
    start_node single "$SPORT"
    echo "smoke: starting partition 0 (primary) on :$P0PORT"
    start_node part0 "$P0PORT" -mode partition -partition-index 0 -partition-count 2 -wal "$CWAL"
    echo "smoke: starting partition 1 (follower) on :$P1PORT"
    start_node part1 "$P1PORT" -mode partition -partition-index 1 -partition-count 2 -wal "$CWAL" -wal-follow -wal-poll 100ms
    echo "smoke: starting coordinator on :$COPORT"
    start_node coord "$COPORT" -mode coordinator -partitions "http://127.0.0.1:$P0PORT,http://127.0.0.1:$P1PORT"

    echo "smoke: GET /v1/cluster (topology)"
    OUT=$(curl -fsS "$COBASE/v1/cluster")
    echo "$OUT" | jsonget 'd["role"]' | grep -qx coordinator || cluster_fail "coordinator role: $OUT"
    echo "$OUT" | jsonget 'len(d["partitions"])' | grep -qx 2 || cluster_fail "partition count: $OUT"
    echo "$OUT" | jsonget 'all(p["healthy"] for p in d["partitions"])' | grep -qx True || cluster_fail "unhealthy partition: $OUT"
    echo "$OUT" | jsonget '[p["accepts_mutations"] for p in d["partitions"]]' | grep -qx '\[True, False\]' || cluster_fail "primary flag: $OUT"

    echo "smoke: scatter-gather searches match the single node byte for byte"
    diff_search '{"query":"star wars cast","k":5}'
    diff_search '{"query":"star wars cast","k":3,"explain":true}'
    diff_search '{"query":"george clooney","k":10,"offset":2}'
    diff_search '{"query":"star wars","k":5,"filter":{"anchor_types":["movie.title"]}}'
    diff_search '{"queries":[{"query":"star wars cast","k":4},{"query":""},{"query":"george clooney","k":2,"explain":true}]}'
    diff_search '{"query":"x","filter":{"definitions":["nope"]}}'

    echo "smoke: mutations through the primary replicate to the follower"
    diff_post "instance add" "$SBASE/v1/instances" "http://127.0.0.1:$P0PORT/v1/instances" \
        '{"definition":"movie-cast","anchor":"zz cluster smoke"}'
    diff_post "feedback" "$SBASE/v1/feedback" "http://127.0.0.1:$P0PORT/v1/feedback" \
        '{"instance_id":"movie-cast:zz cluster smoke","positive":true}'
    wait_converged
    diff_search '{"query":"zz cluster smoke","k":3}'

    echo "smoke: WAL-logged compaction keeps the replicas in step"
    S_OUT=$(curl -fsS -X POST "$SBASE/v1/compact" | scrub)
    C_OUT=$(curl -fsS -X POST "http://127.0.0.1:$P0PORT/v1/compact" | scrub)
    [ "$S_OUT" = "$C_OUT" ] || cluster_fail "compact responses differ
single:  $S_OUT
cluster: $C_OUT"
    wait_converged
    diff_search '{"query":"star wars cast","k":5}'
    diff_search '{"query":"zz cluster smoke","k":3}'

    echo "smoke: non-primary nodes refuse mutations"
    OUT=$(curl -sS -d '{"definition":"movie-cast","anchor":"zz nope"}' "$COBASE/v1/instances")
    echo "$OUT" | jsonget 'd["error"]["code"]' | grep -qx not_supported || cluster_fail "coordinator accepted a mutation: $OUT"
    OUT=$(curl -sS -d '{"definition":"movie-cast","anchor":"zz nope"}' "http://127.0.0.1:$P1PORT/v1/instances")
    echo "$OUT" | jsonget 'd["error"]["code"]' | grep -qx not_supported || cluster_fail "follower accepted a mutation: $OUT"

    for p in $CPIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $CPIDS; do
        i=0
        while kill -0 "$p" 2>/dev/null; do
            i=$((i + 1))
            [ "$i" -gt 100 ] && cluster_fail "cluster node $p did not drain after SIGTERM"
            sleep 0.1
        done
        wait "$p" 2>/dev/null || true
    done
    CPIDS=""
fi

if [ "$MODE" = "loadgen" ] || [ "$MODE" = "all" ]; then
    # Boot qunitsd on a small synth corpus, hit it with a short
    # closed-loop and open-loop burst from cmd/loadgen, and gate the
    # result through benchcheck -load: zero errors, a sane request
    # floor, and a generous absolute p99 ceiling (it catches
    # order-of-magnitude regressions, not CI jitter). Then the same
    # closed-loop burst through a coordinator over two static
    # partitions, proving scatter-gather under real concurrency. Set
    # LOADGEN_JSON to keep the single-node BENCH_LOAD.json.
    LGLOGS="$(mktemp -d)"
    LGBIN="$LGLOGS/loadgen"
    BCBIN="$LGLOGS/benchcheck"
    LJSON="${LOADGEN_JSON:-$LGLOGS/BENCH_LOAD.json}"
    echo "smoke: building loadgen + benchcheck"
    go build -o "$LGBIN" ./cmd/loadgen
    go build -o "$BCBIN" ./cmd/benchcheck

    PORT="$LPORT"
    BASE="http://127.0.0.1:$PORT"
    echo "smoke: starting qunitsd on a 3000-instance synth corpus (:$PORT)"
    start_server -instances 3000

    echo "smoke: loadgen closed+open burst against the single node"
    "$LGBIN" -target "$BASE" -instances 3000 -mode both \
        -duration 2s -warmup 500ms -qps 150 -mutate-rate 0.05 \
        -json "$LJSON" >"$LGLOGS/loadgen.log" 2>&1 || fail "loadgen run failed: $(cat "$LGLOGS/loadgen.log")"
    cat "$LGLOGS/loadgen.log"

    echo "smoke: gating the load report (benchcheck -load)"
    "$BCBIN" -load "$LJSON" -max-p99 2000000 -max-error-rate 0 -min-requests 50 \
        || fail "load gate failed"

    echo "smoke: /stats reports per-endpoint latency quantiles"
    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["latency_us"]["/v1/search"]["count"] > 0' | grep -qx True || fail "no /v1/search latency in stats: $OUT"
    echo "$OUT" | jsonget 'd["latency_us"]["/v1/search"]["p99_us"] >= d["latency_us"]["/v1/search"]["p50_us"]' | grep -qx True || fail "non-monotone latency quantiles: $OUT"
    stop_server

    # lg_node NAME PORT FLAGS…: boot one cluster node for the loadgen
    # leg (static partitions: no WAL, search-only traffic).
    lg_node() {
        name=$1; port=$2; shift 2
        "$BIN" -addr "127.0.0.1:$port" -persons 120 -movies 80 -shards 4 "$@" >"$LGLOGS/$name.log" 2>&1 &
        CPIDS="$CPIDS $!"
        i=0
        until curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            [ "$i" -gt 100 ] && fail "loadgen cluster node $name did not become healthy: $(cat "$LGLOGS/$name.log")"
            sleep 0.2
        done
    }

    echo "smoke: loadgen against a 2-partition cluster (:$LCOPORT)"
    CPIDS=""
    lg_node lgpart0 "$LP0PORT" -mode partition -partition-index 0 -partition-count 2
    lg_node lgpart1 "$LP1PORT" -mode partition -partition-index 1 -partition-count 2
    lg_node lgcoord "$LCOPORT" -mode coordinator -partitions "http://127.0.0.1:$LP0PORT,http://127.0.0.1:$LP1PORT"

    "$LGBIN" -target "http://127.0.0.1:$LCOPORT" -persons 120 -movies 80 -mode closed \
        -duration 2s -warmup 500ms \
        -json "$LGLOGS/BENCH_LOAD.cluster.json" >"$LGLOGS/loadgen-cluster.log" 2>&1 \
        || fail "cluster loadgen run failed: $(cat "$LGLOGS/loadgen-cluster.log")"
    cat "$LGLOGS/loadgen-cluster.log"
    "$BCBIN" -load "$LGLOGS/BENCH_LOAD.cluster.json" -max-p99 2000000 -max-error-rate 0 -min-requests 50 \
        || fail "cluster load gate failed"

    for p in $CPIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $CPIDS; do
        i=0
        while kill -0 "$p" 2>/dev/null; do
            i=$((i + 1))
            [ "$i" -gt 100 ] && fail "loadgen cluster node $p did not drain after SIGTERM"
            sleep 0.1
        done
        wait "$p" 2>/dev/null || true
    done
    CPIDS=""
fi

if [ "$MODE" = "eval" ] || [ "$MODE" = "all" ]; then
    EVBIN="$(mktemp -d)/eval"
    EVDIR="$(mktemp -d)"
    echo "smoke: building cmd/eval"
    go build -o "$EVBIN" ./cmd/eval

    # Offline leg: a fresh in-process engine rebuilt from the golden
    # header's corpus recipe.
    echo "smoke: offline relevance gate (committed imdb golden set)"
    "$EVBIN" -golden imdb -json "$EVDIR/offline.json" || fail "offline relevance gate failed"

    # Online leg: the same golden set through a running qunitsd — the
    # server's defaults (seed 1, 120 persons, 80 movies, expert
    # derivation) are exactly the committed set's corpus recipe.
    echo "smoke: starting qunitsd on the golden corpus (:$PORT)"
    BASE="http://127.0.0.1:$PORT"
    start_server
    echo "smoke: online relevance gate over POST /v1/search"
    "$EVBIN" -golden imdb -online -addr "$BASE" -json "$EVDIR/online.json" || fail "online relevance gate failed"
    stop_server

    # Serving is parity-locked end to end, so the measurement must not
    # change with the transport: byte-identical reports or bust.
    cmp -s "$EVDIR/offline.json" "$EVDIR/online.json" || {
        diff "$EVDIR/offline.json" "$EVDIR/online.json" >&2 || true
        fail "online eval report differs from offline report"
    }
    echo "smoke: online and offline eval reports are byte-identical"

    # EVAL_JSON exports the report for the CI artifact upload.
    if [ -n "${EVAL_JSON:-}" ]; then
        cp "$EVDIR/online.json" "$EVAL_JSON"
        echo "smoke: wrote $EVAL_JSON"
    fi
fi

echo "smoke: PASS"
