#!/bin/sh
# smoke.sh boots qunitsd on a scratch port and exercises the HTTP
# surface end to end with curl: /healthz, /v1/search (single + batch +
# explain + error envelope), /v1/feedback, /v1/instances/{id}, and the
# legacy /search alias — then the snapshot cycle: add an instance over
# /v1, snapshot via SIGTERM, restart from the snapshot, and assert the
# added instance is still searchable — then the compaction cycle:
# accumulate tombstones over /v1/instances, POST /v1/compact while a
# background search loop keeps hitting the server, and assert /stats
# reclamation plus unchanged results. It is the CI smoke test: `make
# smoke` runs the basic flow, `make snapshot-smoke` the snapshot flow,
# `make compact-smoke` the compact-under-load flow, `scripts/smoke.sh
# all` everything. Fast, hermetic, and loud on failure.
#
# Usage: smoke.sh [basic|snapshot|compact|all]   (default: all)
set -eu

MODE="${1:-all}"
case "$MODE" in basic|snapshot|compact|all) ;; *)
    echo "smoke: unknown mode $MODE (want basic|snapshot|compact|all)" >&2; exit 2 ;;
esac

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/qunitsd"
LOG="$(mktemp)"
SNAP="$(mktemp -u).snap"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    [ -n "${PID:-}" ] && wait "$PID" 2>/dev/null || true
    rm -f "$BIN" "$LOG" "$SNAP" "$SNAP.tmp" "$LOG.searchfail"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke: FAIL: $1" >&2
    echo "--- qunitsd log ---" >&2
    cat "$LOG" >&2
    exit 1
}

# jsonget FILTER JSON: extract a field with python (always present in CI
# images; avoids a jq dependency).
jsonget() {
    python3 -c 'import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {"d": d}))' "$1"
}

# start_server EXTRA_FLAGS…: boot qunitsd and wait for /healthz.
start_server() {
    "$BIN" -addr "127.0.0.1:$PORT" -persons 120 -movies 80 "$@" >"$LOG" 2>&1 &
    PID=$!
    i=0
    until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server did not become healthy"
        kill -0 "$PID" 2>/dev/null || fail "server exited early"
        sleep 0.2
    done
}

# stop_server: SIGTERM and wait for the graceful drain.
stop_server() {
    kill -TERM "$PID"
    i=0
    while kill -0 "$PID" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server did not drain after SIGTERM"
        sleep 0.1
    done
    wait "$PID" 2>/dev/null || true
    grep -q "drained" "$LOG" || fail "no graceful-shutdown log line"
    PID=
}

echo "smoke: building qunitsd"
go build -o "$BIN" ./cmd/qunitsd

if [ "$MODE" = "basic" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd on :$PORT"
    start_server

    echo "smoke: GET /healthz"
    curl -fsS "$BASE/healthz" | jsonget 'd["status"]' | grep -qx ok || fail "healthz not ok"

    echo "smoke: POST /v1/search (single)"
    OUT=$(curl -fsS -d '{"query":"star wars cast","k":3,"explain":true}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "single search top result: $OUT"
    echo "$OUT" | jsonget 'd["explain"]["template"]' | grep -q 'movie.title' || fail "explain missing: $OUT"
    TOP_ID=$(echo "$OUT" | jsonget 'd["results"][0]["id"]')

    echo "smoke: POST /v1/search (batch with per-item error)"
    OUT=$(curl -fsS -d '{"queries":[{"query":"george clooney","k":2},{"query":""}]}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'len(d["items"])' | grep -qx 2 || fail "batch item count: $OUT"
    echo "$OUT" | jsonget 'd["items"][1]["error"]["code"]' | grep -qx invalid_argument || fail "batch per-item error: $OUT"

    echo "smoke: POST /v1/search (error envelope)"
    OUT=$(curl -sS -d '{"query":"x","filter":{"definitions":["nope"]}}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["error"]["code"]' | grep -qx unknown_definition || fail "error envelope: $OUT"

    echo "smoke: POST /v1/feedback"
    OUT=$(curl -fsS -d "{\"instance_id\":$(printf '%s' "$TOP_ID" | python3 -c 'import json,sys; print(json.dumps(sys.stdin.read()))'),\"positive\":true}" "$BASE/v1/feedback")
    echo "$OUT" | jsonget 'd["utility"] > 0' | grep -qx True || fail "feedback: $OUT"

    echo "smoke: GET /v1/instances/{id}"
    ENC_ID=$(printf '%s' "$TOP_ID" | python3 -c 'import sys,urllib.parse; print(urllib.parse.quote(sys.stdin.read()))')
    OUT=$(curl -fsS "$BASE/v1/instances/$ENC_ID")
    echo "$OUT" | jsonget 'd["definition"]' | grep -qx movie-cast || fail "instance fetch: $OUT"

    echo "smoke: GET /search (legacy alias)"
    OUT=$(curl -fsS "$BASE/search?q=star+wars+cast&k=2")
    echo "$OUT" | jsonget 'd["results"][0]["definition"]' | grep -qx movie-cast || fail "legacy search: $OUT"

    echo "smoke: GET /stats"
    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["feedbacks"]' | grep -qx 1 || fail "stats feedbacks: $OUT"

    echo "smoke: graceful shutdown (SIGTERM)"
    stop_server
fi

if [ "$MODE" = "snapshot" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd with -snapshot (fresh build)"
    start_server -snapshot "$SNAP"

    echo "smoke: POST /v1/instances (live add)"
    OUT=$(curl -fsS -d '{"definition":"movie-cast","anchor":"smoke snapshot qunit"}' "$BASE/v1/instances")
    echo "$OUT" | jsonget 'd["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "instance create: $OUT"

    echo "smoke: added instance is searchable without restart"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "live search after add: $OUT"

    echo "smoke: SIGTERM writes the snapshot"
    stop_server
    grep -q "snapshot written" "$LOG" || fail "no snapshot-written log line"
    [ -s "$SNAP" ] || fail "snapshot file missing or empty"

    echo "smoke: restarting from the snapshot"
    start_server -snapshot "$SNAP"
    grep -q "loaded from snapshot" "$LOG" || fail "server did not load the snapshot"

    echo "smoke: added instance survived the restart"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget 'd["results"][0]["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "search after restart: $OUT"
    OUT=$(curl -fsS "$BASE/v1/instances/movie-cast:smoke%20snapshot%20qunit")
    echo "$OUT" | jsonget 'd["definition"]' | grep -qx movie-cast || fail "instance fetch after restart: $OUT"

    echo "smoke: DELETE /v1/instances/{id}"
    OUT=$(curl -fsS -X DELETE "$BASE/v1/instances/movie-cast:smoke%20snapshot%20qunit")
    echo "$OUT" | jsonget 'd["id"]' | grep -qx 'movie-cast:smoke snapshot qunit' || fail "instance delete: $OUT"
    OUT=$(curl -fsS -d '{"query":"smoke snapshot qunit","k":3}' "$BASE/v1/search")
    echo "$OUT" | jsonget '[r["id"] for r in d["results"]].count("movie-cast:smoke snapshot qunit")' | grep -qx 0 || fail "deleted instance still served: $OUT"

    stop_server
fi

if [ "$MODE" = "compact" ] || [ "$MODE" = "all" ]; then
    echo "smoke: starting qunitsd with -compact-ratio"
    start_server -compact-ratio 0.5

    echo "smoke: accumulating tombstones over /v1/instances"
    for i in 1 2 3 4; do
        curl -fsS -d "{\"definition\":\"movie-cast\",\"anchor\":\"compact smoke qunit $i\"}" "$BASE/v1/instances" >/dev/null || fail "instance create $i"
    done
    for i in 1 2 3; do
        curl -fsS -X DELETE "$BASE/v1/instances/movie-cast:compact%20smoke%20qunit%20$i" >/dev/null || fail "instance delete $i"
    done
    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["index_tombstones"] >= 3' | grep -qx True || fail "tombstones not accumulated: $OUT"

    BEFORE=$(curl -fsS -d '{"query":"star wars cast","k":3}' "$BASE/v1/search" | jsonget 'd["results"][0]["id"]')

    echo "smoke: POST /v1/compact under live search load"
    FAILMARK="$LOG.searchfail"
    rm -f "$FAILMARK"
    ( i=0; while [ "$i" -lt 40 ]; do
          # A fresh query text each iteration: distinct cache keys, so
          # every request really reaches the engine while the pass runs
          # (a repeated query would be served from the result cache and
          # prove nothing about search availability).
          curl -fsS -d "{\"query\":\"star wars cast $i\",\"k\":3}" "$BASE/v1/search" >/dev/null 2>&1 || { touch "$FAILMARK"; break; }
          i=$((i + 1))
      done ) &
    LOADPID=$!
    OUT=$(curl -fsS -X POST "$BASE/v1/compact")
    echo "$OUT" | jsonget 'd["reclaimed_slots"] >= 3' | grep -qx True || fail "compact reclaimed too little: $OUT"
    wait "$LOADPID"
    [ ! -e "$FAILMARK" ] || fail "a search failed while compaction ran"

    OUT=$(curl -fsS "$BASE/stats")
    echo "$OUT" | jsonget 'd["index_tombstones"]' | grep -qx 0 || fail "tombstones survived compaction: $OUT"
    echo "$OUT" | jsonget 'd["compactions"] >= 1' | grep -qx True || fail "compaction counter missing: $OUT"
    echo "$OUT" | jsonget 'd["slots_reclaimed"] >= 3' | grep -qx True || fail "reclaimed counter missing: $OUT"

    echo "smoke: results unchanged across compaction"
    AFTER=$(curl -fsS -d '{"query":"star wars cast","k":3}' "$BASE/v1/search" | jsonget 'd["results"][0]["id"]')
    [ "$BEFORE" = "$AFTER" ] || fail "top result changed across compaction: $BEFORE vs $AFTER"

    echo "smoke: surviving live-added instance still served after compaction"
    OUT=$(curl -fsS -d '{"query":"compact smoke qunit","k":5}' "$BASE/v1/search")
    echo "$OUT" | jsonget '[r["id"] for r in d["results"]].count("movie-cast:compact smoke qunit 4")' | grep -qx 1 || fail "survivor lost across compaction: $OUT"

    stop_server
fi

echo "smoke: PASS"
